(** The benchmark runner: executes a workload under the paper's three
    configurations and reports cycles, transitions and %MU.

    For each benchmark the runner first replays the paper's methodology:
    profile the workload on an instrumented build, then build base / alloc
    / mpk images.  The profile for a whole suite is the merge of its
    benchmarks' profiling runs (the "profiling corpus").  Checksum output
    is compared across configurations, so a mis-partitioned heap cannot
    silently corrupt a result. *)

type measurement = {
  cycles : int;
  transitions : int;
  pct_mu : float;
  mt_bytes : int;  (** trusted-allocator bytes kept in MT *)
  mu_bytes : int;  (** trusted-allocator bytes moved to MU *)
  output : string list;
  trace : Telemetry.Sink.t option;
      (** telemetry captured during the timed script run, when the run was
          made with [~telemetry:true] *)
  samples : Telemetry.Sampler.t option;
      (** cycle-sampled compartment stacks from the timed script run, when
          the run was made with [~sample_every] *)
  census : Telemetry.Census.t option;
      (** periodic heap-census snapshots from the timed script run, when
          the run was made with [~census_every] *)
  quarantined_sites : string list;
      (** pkalloc's site-override table after the run (sorted) — sites the
          mitigator's Promote policy or an audit promotion routed to MU *)
}

type bench_result = {
  bench : string;
  base : measurement;
  alloc : measurement;
  mpk : measurement;
  alloc_overhead_pct : float;
  mpk_overhead_pct : float;
  outputs_agree : bool;
}

type suite_result = {
  suite : string;
  bench_results : bench_result list;
  mean_alloc_pct : float;   (** mean of per-benchmark alloc overheads *)
  mean_mpk_pct : float;
  total_transitions : int;  (** summed over the suite's mpk runs *)
  mean_pct_mu : float;      (** byte-weighted %MU across the suite *)
}

val profile_suite : Bench_def.suite -> Runtime.Profile.t
(** Runs every benchmark once on a profiling build and merges the results. *)

val profile_bench : ?engine_tier:Engine.tier -> Bench_def.bench -> Runtime.Profile.t
(** One profiling run (used by the dispatch-equivalence tests to exercise
    the fault + single-step path under a chosen tier). *)

val run_config :
  ?telemetry:bool ->
  ?sample_every:int ->
  ?census_every:int ->
  ?tlb:bool ->
  ?mitigation:Runtime.Mitigator.policy ->
  ?engine_tier:Engine.tier ->
  mode:Pkru_safe.Config.mode ->
  profile:Runtime.Profile.t ->
  Bench_def.bench ->
  measurement
(** One benchmark under one configuration (fresh machine; counters are
    reset after page load so the script execution is what is timed).
    With [~telemetry:true] a fresh sink is installed for the duration of
    the timed script and returned in the measurement's [trace] field; the
    machine's TLB hit/miss/flush deltas over the timed run are injected as
    the sink counters ["tlb_hit"]/["tlb_miss"]/["tlb_flush"] after it
    finishes (never from the access path, so traces stay bit-identical
    TLB on or off).  With [~sample_every:n] a {!Telemetry.Sampler}
    snapshots the thread's compartment stack every [n] simulated cycles
    and is returned in [samples].  With [~census_every:n] a
    {!Telemetry.Census} walks the heap every [n] simulated cycles
    (tracking covers page-load allocations too) and is returned in
    [census].  None of the three charges simulated cycles, so
    traced/sampled/censused and plain runs report identical [cycles].
    [tlb] forwards to {!Pkru_safe.Config.make} (default on), as does
    [mitigation] (a fault-recovery policy for [Mpk] runs; default none).
    [engine_tier] selects the engine execution tier for the timed script
    (default AST); with telemetry on, engine IC hit/miss and
    superinstruction counters are injected post-run as
    ["engine_var_ic_hit"/"engine_var_ic_miss"/"engine_prop_ic_hit"/
    "engine_prop_ic_miss"/"engine_super_exec"/"engine_selector_hit"/
    "engine_selector_miss"] — all zero outside the fast tier. *)

val run_bench :
  ?telemetry:bool ->
  ?sample_every:int ->
  profile:Runtime.Profile.t ->
  Bench_def.bench ->
  bench_result

val run_suite :
  ?progress:(string -> unit) ->
  ?telemetry:bool ->
  ?sample_every:int ->
  Bench_def.suite ->
  suite_result
(** Full methodology for one suite; [progress] is called per benchmark. *)

val score : measurement -> float
(** JetStream-style score: inversely proportional to runtime (higher is
    better). *)

val geomean_score : suite_result -> (Pkru_safe.Config.mode -> float)
(** Geometric-mean score per configuration (Table 3). *)
