(** The call-gate micro-benchmarks (paper §5.2 and Figure 3).

    Three FFI workloads, each in a trusted (no gates) and an untrusted
    (gated) variant that are otherwise identical:
    {ul
    {- [Empty]: the callee has no body — the per-call ceiling;}
    {- [Read-One]: the callee performs one heap read;}
    {- [Callback]: the callee re-enters T through a reverse gate.}}

    [sweep] grows the amount of work done inside the gated callee,
    reproducing Figure 3's decay of normalised runtime toward 1.0. *)

type result = {
  name : string;
  ungated_cycles_per_call : float;
  gated_cycles_per_call : float;
  overhead_x : float;
}

val run : ?iterations:int -> unit -> result list
(** Empty, Read-One and Callback, in that order (default 20k iterations
    each). *)

val sweep : loop_counts:int list -> ?iterations:int -> unit -> (int * float) list
(** [(loop_count, normalised_runtime)] pairs for Figure 3. *)

(** {2 Software-TLB microbench} *)

type tlb_result = {
  pages : int;   (** working-set size, in pages *)
  iters : int;   (** timed rounds over the working set *)
  wall_on_s : float;   (** host wall-clock with the TLB, seconds *)
  wall_off_s : float;  (** host wall-clock down the slow path, seconds *)
  speedup : float;     (** [wall_off_s /. wall_on_s] *)
  cycles_on : int;     (** simulated cycles with the TLB *)
  cycles_off : int;    (** simulated cycles without — must equal [cycles_on] *)
  tlb : Sim.Tlb.stats; (** hit/miss/flush counts from the TLB-on run *)
}

val tlb_hot : ?pages:int -> ?iters:int -> unit -> tlb_result
(** A page-hot read+write loop over a small working set (default 8 pages
    x 200k rounds), run on two otherwise identical machines with the
    software TLB on and off.  Simulated cycle counts are identical by
    construction; the host wall-clock ratio is the TLB's speedup on the
    checked-access fast path. *)
