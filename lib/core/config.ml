type mode =
  | Base
  | Alloc
  | Profiling
  | Mpk

type t = {
  mode : mode;
  mu_backend : Allocators.Pkalloc.mu_backend;
  cost : Sim.Cost.t;
  trusted_pkey : Mpk.Pkey.t;
  tlb : bool;
  mitigation : Runtime.Mitigator.policy option;
}

let make ?(mu_backend = Allocators.Pkalloc.Mu_dlmalloc) ?(cost = Sim.Cost.default)
    ?(trusted_pkey = Mpk.Pkey.of_int 1) ?(tlb = true) ?mitigation mode =
  { mode; mu_backend; cost; trusted_pkey; tlb; mitigation }

let mode_to_string = function
  | Base -> "base"
  | Alloc -> "alloc"
  | Profiling -> "profiling"
  | Mpk -> "mpk"

let gates_active t =
  match t.mode with
  | Base | Alloc -> false
  | Profiling | Mpk -> true

let split_heap t =
  match t.mode with
  | Base | Profiling -> false
  | Alloc | Mpk -> true
