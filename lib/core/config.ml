type mode =
  | Base
  | Alloc
  | Profiling
  | Mpk

type defenses = {
  sigframe_scrub : bool;
  syscall_filter : bool;
  gate_reverify : bool;
}

let no_defenses = { sigframe_scrub = false; syscall_filter = false; gate_reverify = false }
let all_defenses = { sigframe_scrub = true; syscall_filter = true; gate_reverify = true }

let defenses_to_string d =
  let flags =
    List.filter_map
      (fun (on, name) -> if on then Some name else None)
      [
        (d.sigframe_scrub, "sigframe-scrub");
        (d.syscall_filter, "syscall-filter");
        (d.gate_reverify, "gate-reverify");
      ]
  in
  match flags with [] -> "none" | _ -> String.concat "," flags

type t = {
  mode : mode;
  mu_backend : Allocators.Pkalloc.mu_backend;
  cost : Sim.Cost.t;
  trusted_pkey : Mpk.Pkey.t;
  tlb : bool;
  mitigation : Runtime.Mitigator.policy option;
  defenses : defenses;
}

let make ?(mu_backend = Allocators.Pkalloc.Mu_dlmalloc) ?(cost = Sim.Cost.default)
    ?(trusted_pkey = Mpk.Pkey.of_int 1) ?(tlb = true) ?mitigation
    ?(defenses = no_defenses) mode =
  { mode; mu_backend; cost; trusted_pkey; tlb; mitigation; defenses }

let mode_to_string = function
  | Base -> "base"
  | Alloc -> "alloc"
  | Profiling -> "profiling"
  | Mpk -> "mpk"

let gates_active t =
  match t.mode with
  | Base | Alloc -> false
  | Profiling | Mpk -> true

let split_heap t =
  match t.mode with
  | Base | Profiling -> false
  | Alloc | Mpk -> true
