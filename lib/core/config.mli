(** Build configurations.

    These mirror the paper's evaluation configurations (§5.3):
    {ul
    {- [Base]: unmodified application — the fast allocator everywhere, no
       compartment boundaries;}
    {- [Alloc]: pkalloc substituted as the global allocator (profile-driven
       MT/MU split) but no call gates — isolates allocator overhead;}
    {- [Profiling]: the instrumented profile build — everything in MT,
       gates active, provenance tracking and the permissive fault handler
       installed;}
    {- [Mpk]: the final enforcement build — pkalloc split plus call gates;
       an unprofiled cross-compartment access crashes the program.}} *)

type mode =
  | Base
  | Alloc
  | Profiling
  | Mpk

type defenses = {
  sigframe_scrub : bool;
      (** Garmr defense: sigreturn validates the signal frame's saved
          PKRU; a forged restore is refused fail-stop instead of being
          installed ({!Sim.Signals.set_sigframe_scrub}). *)
  syscall_filter : bool;
      (** Garmr defense: the machine's kernel interface refuses
          pkey/page-table mutations ([sys_pkey_mprotect] & co) issued
          from U residency ({!Sim.Machine.set_syscall_filter}). *)
  gate_reverify : bool;
      (** Garmr defense: the fleet scheduler re-checks the hart's live
          PKRU against the gate's resident view before resuming a parked
          continuation ({!Runtime.Gate.reverify}). *)
}
(** Opt-in hardened-gate policies countering the Garmr attack classes.
    All default off; each is architecturally invisible when disabled
    (the enforcement paths act only on attack traffic, never charging
    cycles or emitting events on benign runs). *)

val no_defenses : defenses
(** All policies off — the pre-hardening behaviour, and the default. *)

val all_defenses : defenses
(** Every policy on (what a hardened deployment would run). *)

val defenses_to_string : defenses -> string
(** Comma-separated enabled flags, ["none"] when all are off. *)

type t = {
  mode : mode;
  mu_backend : Allocators.Pkalloc.mu_backend;
  cost : Sim.Cost.t;
  trusted_pkey : Mpk.Pkey.t;
  tlb : bool;
      (** enable the machine's software TLB (default).  Architecturally
          invisible either way — only host wall-clock differs. *)
  mitigation : Runtime.Mitigator.policy option;
      (** fault-recovery policy for the enforcement build; [None] (the
          default) installs no mitigator.  Only meaningful under [Mpk] —
          other modes ignore it ([Profiling] already resolves every MPK
          fault; [Base]/[Alloc] never raise one). *)
  defenses : defenses;  (** Garmr hardened-gate policies (default: none). *)
}

val make :
  ?mu_backend:Allocators.Pkalloc.mu_backend ->
  ?cost:Sim.Cost.t ->
  ?trusted_pkey:Mpk.Pkey.t ->
  ?tlb:bool ->
  ?mitigation:Runtime.Mitigator.policy ->
  ?defenses:defenses ->
  mode ->
  t

val mode_to_string : mode -> string

val gates_active : t -> bool
(** Whether this configuration inserts call gates at the boundary. *)

val split_heap : t -> bool
(** Whether allocation sites named by the profile draw from MU. *)
