(** Build configurations.

    These mirror the paper's evaluation configurations (§5.3):
    {ul
    {- [Base]: unmodified application — the fast allocator everywhere, no
       compartment boundaries;}
    {- [Alloc]: pkalloc substituted as the global allocator (profile-driven
       MT/MU split) but no call gates — isolates allocator overhead;}
    {- [Profiling]: the instrumented profile build — everything in MT,
       gates active, provenance tracking and the permissive fault handler
       installed;}
    {- [Mpk]: the final enforcement build — pkalloc split plus call gates;
       an unprofiled cross-compartment access crashes the program.}} *)

type mode =
  | Base
  | Alloc
  | Profiling
  | Mpk

type t = {
  mode : mode;
  mu_backend : Allocators.Pkalloc.mu_backend;
  cost : Sim.Cost.t;
  trusted_pkey : Mpk.Pkey.t;
  tlb : bool;
      (** enable the machine's software TLB (default).  Architecturally
          invisible either way — only host wall-clock differs. *)
  mitigation : Runtime.Mitigator.policy option;
      (** fault-recovery policy for the enforcement build; [None] (the
          default) installs no mitigator.  Only meaningful under [Mpk] —
          other modes ignore it ([Profiling] already resolves every MPK
          fault; [Base]/[Alloc] never raise one). *)
}

val make :
  ?mu_backend:Allocators.Pkalloc.mu_backend ->
  ?cost:Sim.Cost.t ->
  ?trusted_pkey:Mpk.Pkey.t ->
  ?tlb:bool ->
  ?mitigation:Runtime.Mitigator.policy ->
  mode ->
  t

val mode_to_string : mode -> string

val gates_active : t -> bool
(** Whether this configuration inserts call gates at the boundary. *)

val split_heap : t -> bool
(** Whether allocation sites named by the profile draw from MU. *)
