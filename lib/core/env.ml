type thread = {
  t_cpu : Sim.Cpu.t;
  t_gate : Runtime.Gate.t;
}

type t = {
  config : Config.t;
  machine : Sim.Machine.t;
  pkalloc : Allocators.Pkalloc.t;
  main : thread;
  mutable active : thread;
  mutable threads : thread list;
  profiler : Runtime.Profiler.t option;
  mitigator : Runtime.Mitigator.t option;
  input_profile : Runtime.Profile.t;
  sites_seen : (Runtime.Alloc_id.t, unit) Hashtbl.t;
  mutable sites_moved : int;
  mutable t_heap_bytes_mt : int; (* Env.alloc traffic kept in MT *)
  mutable t_heap_bytes_mu : int; (* Env.alloc traffic moved to MU *)
  (* Census state: a live-object table over Env.alloc traffic (both
     pools) plus per-object birth cycles, maintained only once
     [track_census] has been called so untracked runs pay nothing. *)
  mutable census_meta : Runtime.Metadata.t option;
  census_births : (int, int) Hashtbl.t; (* addr -> birth cycle *)
}

let create ?profile ?backing config =
  let machine = Sim.Machine.create ~cost:config.Config.cost ~tlb:config.Config.tlb () in
  match
    Allocators.Pkalloc.create ?backing ~mu_backend:config.Config.mu_backend
      ~trusted_pkey:config.Config.trusted_pkey machine
  with
  | Error _ as e -> e
  | Ok pkalloc ->
    let main =
      {
        t_cpu = machine.Sim.Machine.cpu;
        t_gate = Runtime.Gate.create ~trusted_pkey:config.Config.trusted_pkey machine;
      }
    in
    let profiler =
      match config.Config.mode with
      | Config.Profiling ->
        let p = Runtime.Profiler.create ~trusted_pkey:config.Config.trusted_pkey machine in
        Runtime.Profiler.install p;
        Some p
      | Config.Base | Config.Alloc | Config.Mpk -> None
    in
    let mitigator =
      match (config.Config.mode, config.Config.mitigation) with
      | Config.Mpk, Some policy ->
        let m =
          Runtime.Mitigator.create ~trusted_pkey:config.Config.trusted_pkey ~policy ~pkalloc
            machine
        in
        Runtime.Mitigator.install m;
        Some m
      | _ -> None
    in
    let input_profile =
      match profile with
      | Some p -> p
      | None -> Runtime.Profile.create ()
    in
    (* Garmr hardened-gate policies: arm the kernel-side defenses this
       config opted into.  Each default is the pre-hardening behaviour,
       so a [no_defenses] env is indistinguishable from one built before
       the policies existed.  (Gate re-verification is a scheduler
       policy, consumed by the fleet — nothing to arm here.) *)
    let defenses = config.Config.defenses in
    if defenses.Config.sigframe_scrub then
      Sim.Signals.set_sigframe_scrub machine.Sim.Machine.signals true;
    if defenses.Config.syscall_filter then
      Sim.Machine.set_syscall_filter machine (Some config.Config.trusted_pkey);
    Ok
      {
        config;
        machine;
        pkalloc;
        main;
        active = main;
        threads = [ main ];
        profiler;
        mitigator;
        input_profile;
        sites_seen = Hashtbl.create 256;
        sites_moved = 0;
        t_heap_bytes_mt = 0;
        t_heap_bytes_mu = 0;
        census_meta = None;
        census_births = Hashtbl.create 64;
      }

let config t = t.config
let machine t = t.machine
let pkalloc t = t.pkalloc
let gate t = t.active.t_gate
let profiler t = t.profiler
let mitigator t = t.mitigator

let main_thread t = t.main

let spawn_thread t =
  let thread =
    {
      t_cpu = Sim.Machine.spawn_cpu t.machine;
      t_gate = Runtime.Gate.create ~trusted_pkey:t.config.Config.trusted_pkey t.machine;
    }
  in
  t.threads <- t.threads @ [ thread ];
  thread

let run_on_thread t thread f =
  let previous = t.active in
  t.active <- thread;
  Fun.protect
    ~finally:(fun () -> t.active <- previous)
    (fun () -> Sim.Machine.run_on t.machine thread.t_cpu f)

let thread_cpu thread = thread.t_cpu
let thread_gate thread = thread.t_gate

(* Non-bracketed thread switch for effect-based schedulers (the fleet's
   attack battery): a [Fun.protect] bracket cannot straddle an
   [Effect.perform], so the scheduler activates a thread around each
   slice and restores the previous one itself.  Returns the previously
   active thread. *)
let activate_thread t thread =
  let previous = t.active in
  ignore (Sim.Machine.switch_to_cpu t.machine thread.t_cpu);
  t.active <- thread;
  previous

let note_site t site moved =
  if not (Hashtbl.mem t.sites_seen site) then begin
    Hashtbl.add t.sites_seen site ();
    if moved then t.sites_moved <- t.sites_moved + 1
  end

(* The AllocId label is only rendered when a telemetry sink is installed;
   disabled runs never build the string. *)
let site_label site =
  if Telemetry.Sink.active () then Some (Runtime.Alloc_id.to_string site) else None

(* A site draws from MU when the input profile names it — or when the
   mitigator's Promote policy quarantined it at runtime (the pkalloc
   site-override table).  The quarantine check is gated on a non-empty
   table so the common path never builds the printed AllocId. *)
let site_overridden t site =
  Allocators.Pkalloc.quarantined_count t.pkalloc > 0
  && Allocators.Pkalloc.site_quarantined t.pkalloc (Runtime.Alloc_id.to_string site)

let alloc t ~site size =
  let moved =
    Config.split_heap t.config
    && (Runtime.Profile.mem t.input_profile site || site_overridden t site)
  in
  note_site t site moved;
  let label = site_label site in
  let result =
    if moved then Allocators.Pkalloc.alloc_untrusted ?site:label t.pkalloc size
    else Allocators.Pkalloc.alloc_trusted ?site:label t.pkalloc size
  in
  match result with
  | None -> raise Out_of_memory
  | Some addr ->
    if moved then t.t_heap_bytes_mu <- t.t_heap_bytes_mu + size
    else t.t_heap_bytes_mt <- t.t_heap_bytes_mt + size;
    (match t.profiler with
    | Some p -> Runtime.Profiler.log_alloc p ~alloc_id:site ~addr ~size
    | None -> ());
    (match t.mitigator with
    | Some m -> Runtime.Mitigator.log_alloc m ~alloc_id:site ~addr ~size
    | None -> ());
    (match t.census_meta with
    | Some meta ->
      Runtime.Metadata.on_alloc meta ~addr ~size ~alloc_id:site;
      Hashtbl.replace t.census_births addr (Sim.Machine.cycles t.machine)
    | None -> ());
    addr

let dealloc t addr =
  (match t.profiler with
  | Some p -> Runtime.Profiler.log_dealloc p ~addr
  | None -> ());
  (match t.mitigator with
  | Some m -> Runtime.Mitigator.log_dealloc m ~addr
  | None -> ());
  (match t.census_meta with
  | Some meta ->
    Runtime.Metadata.on_dealloc meta ~addr;
    Hashtbl.remove t.census_births addr
  | None -> ());
  Allocators.Pkalloc.dealloc t.pkalloc addr

let realloc t addr new_size =
  match Allocators.Pkalloc.realloc t.pkalloc addr new_size with
  | None -> raise Out_of_memory
  | Some fresh ->
    (match t.profiler with
    | Some p -> Runtime.Profiler.log_realloc p ~old_addr:addr ~new_addr:fresh ~new_size
    | None -> ());
    (match t.mitigator with
    | Some m -> Runtime.Mitigator.log_realloc m ~old_addr:addr ~new_addr:fresh ~new_size
    | None -> ());
    (match t.census_meta with
    | Some meta ->
      Runtime.Metadata.on_realloc meta ~old_addr:addr ~new_addr:fresh ~new_size;
      (* The object's identity — and so its birth — survives realloc. *)
      (match Hashtbl.find_opt t.census_births addr with
      | Some birth ->
        Hashtbl.remove t.census_births addr;
        Hashtbl.replace t.census_births fresh birth
      | None -> ())
    | None -> ());
    fresh

let malloc_untrusted t size =
  match Allocators.Pkalloc.alloc_untrusted t.pkalloc size with
  | None -> raise Out_of_memory
  | Some addr -> addr

let ffi_call t f =
  if Config.gates_active t.config then Runtime.Gate.call_untrusted t.active.t_gate f else f ()

let callback t f =
  if Config.gates_active t.config then Runtime.Gate.callback_trusted t.active.t_gate f else f ()

let recorded_profile t =
  match t.profiler with
  | Some p -> Runtime.Profiler.profile p
  | None -> invalid_arg "Env.recorded_profile: not a profiling build"

let transitions t =
  List.fold_left (fun acc thread -> acc + Runtime.Gate.transitions thread.t_gate) 0 t.threads

let reset_counters t =
  List.iter Sim.Cpu.reset_cycles (Sim.Machine.cpus t.machine);
  List.iter (fun thread -> Runtime.Gate.reset_transitions thread.t_gate) t.threads

let cycles t = Sim.Machine.cycles t.machine

(* The paper's %MU counts how much of the safe language's heap traffic the
   instrumentation redirected to MU; U's own mallocs are not part of it. *)
let percent_untrusted_bytes t =
  let mt = float_of_int t.t_heap_bytes_mt in
  let mu = float_of_int t.t_heap_bytes_mu in
  if mt +. mu = 0.0 then 0.0 else 100.0 *. mu /. (mt +. mu)

let t_heap_bytes t = (t.t_heap_bytes_mt, t.t_heap_bytes_mu)

let sites_used t = Hashtbl.length t.sites_seen
let sites_moved t = t.sites_moved

(* The sampling profiler's snapshot provider: the active thread's gate
   owns the compartment stack being executed right now. *)
let stack_frames t = Runtime.Gate.stack_frames t.active.t_gate

(* --- heap census --- *)

(* Tracking is opt-in: the live-object table and birth cycles are only
   maintained once this has been called, so a run that never asked for a
   census (or an audit) does no extra bookkeeping. *)
let track_census t =
  match t.census_meta with
  | Some _ -> ()
  | None -> t.census_meta <- Some (Runtime.Metadata.create ())

let census_metadata t = t.census_meta

(* The census snapshot provider: per-pool allocator statistics plus the
   per-site live view and object ages from the census metadata.  Pure
   OCaml reads over pkalloc / pool / metadata state — charges no
   simulated cycles, takes no checked accesses. *)
let census_snapshot t () =
  let pool_stats name stats pool =
    let live = Allocators.Alloc_stats.live_bytes stats in
    let pages = Allocators.Pool.pages_in_use pool in
    let frag =
      if pages = 0 then 0.0
      else 1.0 -. (float_of_int live /. float_of_int (pages * Vmm.Layout.page_size))
    in
    {
      Telemetry.Census.cp_pool = name;
      cp_live_bytes = live;
      cp_live_objects = Allocators.Alloc_stats.live_objects stats;
      cp_allocs = stats.Allocators.Alloc_stats.allocs;
      cp_frees = stats.Allocators.Alloc_stats.frees;
      cp_bytes_allocated = stats.Allocators.Alloc_stats.bytes_allocated;
      cp_bytes_freed = stats.Allocators.Alloc_stats.bytes_freed;
      cp_peak_live_bytes = Allocators.Alloc_stats.peak_live_bytes stats;
      cp_pages_in_use = pages;
      cp_high_water_pages = Allocators.Pool.high_water_pages pool;
      cp_fragmentation = frag;
    }
  in
  let pools =
    [
      pool_stats "mt"
        (Allocators.Pkalloc.trusted_stats t.pkalloc)
        (Allocators.Pkalloc.trusted_pool t.pkalloc);
      pool_stats "mu"
        (Allocators.Pkalloc.untrusted_stats t.pkalloc)
        (Allocators.Pkalloc.untrusted_pool t.pkalloc);
    ]
  in
  let now = Sim.Machine.cycles t.machine in
  let ages = Telemetry.Histogram.create () in
  let sites =
    match t.census_meta with
    | None -> []
    | Some meta ->
      let per_site : (string * string, int ref * int ref) Hashtbl.t = Hashtbl.create 32 in
      Runtime.Metadata.iter
        (fun r ->
          let site = Runtime.Alloc_id.to_string r.Runtime.Metadata.alloc_id in
          let pool =
            match Allocators.Pkalloc.pool_of_addr t.pkalloc r.Runtime.Metadata.addr with
            | Some `Untrusted -> "mu"
            | Some `Trusted | None -> "mt"
          in
          let bytes, objects =
            match Hashtbl.find_opt per_site (site, pool) with
            | Some cell -> cell
            | None ->
              let cell = (ref 0, ref 0) in
              Hashtbl.add per_site (site, pool) cell;
              cell
          in
          bytes := !bytes + r.Runtime.Metadata.size;
          incr objects;
          (* Births recorded before a counter reset postdate "now";
             Histogram.observe clamps the negative age to 0. *)
          let birth =
            match Hashtbl.find_opt t.census_births r.Runtime.Metadata.addr with
            | Some b -> b
            | None -> now
          in
          Telemetry.Histogram.observe ages (now - birth))
        meta;
      Hashtbl.fold
        (fun (site, pool) (bytes, objects) acc ->
          {
            Telemetry.Census.cs_site = site;
            cs_pool = pool;
            cs_live_bytes = !bytes;
            cs_live_objects = !objects;
          }
          :: acc)
        per_site []
      |> List.sort (fun (a : Telemetry.Census.site_stats) b ->
             compare (a.Telemetry.Census.cs_site, a.cs_pool) (b.Telemetry.Census.cs_site, b.cs_pool))
  in
  { Telemetry.Census.at_cycle = now; pools; sites; ages }

(* The flight recorder's machine-context provider: everything a
   post-mortem wants that only the environment can see — simulated
   cycles, each hart's live PKRU, the active gate's nesting depth,
   the last fault delivered, and (when a mitigator tracks metadata) the
   allocation that fault landed in.  Pure reads; charges no cycles.
   Install with [Telemetry.Flight.set_context rec (Env.flight_context env)]. *)
let flight_context t () =
  let open Util.Json in
  let cpus =
    List.map
      (fun (cpu : Sim.Cpu.t) ->
        Obj [ ("id", Int cpu.Sim.Cpu.id); ("pkru", Int (Mpk.Pkru.to_int cpu.Sim.Cpu.pkru)) ])
      (Sim.Machine.cpus t.machine)
  in
  let gate_depth =
    List.length (Runtime.Comp_stack.to_list (Runtime.Gate.stack t.active.t_gate))
  in
  let last_fault =
    match Sim.Signals.last_fault t.machine.Sim.Machine.signals with
    | None -> []
    | Some (fault, hart) ->
      [
        ( "last_fault",
          Obj
            [
              ("kind", String (Vmm.Fault.to_string fault));
              ("addr", Int fault.Vmm.Fault.addr);
              ("hart", Int hart);
            ] );
      ]
  in
  let suspect =
    match (t.mitigator, Sim.Signals.last_fault t.machine.Sim.Machine.signals) with
    | Some m, Some (fault, _) -> (
      match Runtime.Metadata.lookup (Runtime.Mitigator.metadata m) fault.Vmm.Fault.addr with
      | None -> []
      | Some r ->
        [
          ( "suspect_alloc",
            Obj
              [
                ("alloc_id", String (Runtime.Alloc_id.to_string r.Runtime.Metadata.alloc_id));
                ("base", Int r.Runtime.Metadata.addr);
                ("size", Int r.Runtime.Metadata.size);
              ] );
        ])
    | _ -> []
  in
  (* When a census is live, the latest heap snapshot rides along so the
     post-mortem shows what the heap looked like near death. *)
  let census =
    match !Telemetry.Census.current with
    | None -> []
    | Some c -> (
      match Telemetry.Census.latest c with
      | None -> []
      | Some snap -> [ ("census", Telemetry.Census.snapshot_json snap) ])
  in
  Obj
    ([
       ("cycles", Int (Sim.Machine.cycles t.machine));
       ("cpus", List cpus);
       ("gate_depth", Int gate_depth);
       ("gate_transitions", Int (transitions t));
       ("mode", String (Config.mode_to_string t.config.Config.mode));
     ]
    @ last_fault @ suspect @ census)
