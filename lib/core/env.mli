(** The per-build runtime environment.

    One [Env.t] corresponds to one compiled application image: a simulated
    machine, the global allocator the build linked (plain fast allocator
    for [Base], pkalloc otherwise), the call gates the compiler inserted
    (or not), and — in a [Profiling] build — the provenance-tracking
    runtime with its fault handler installed.

    Application substrates (the IR interpreter, the browser, the script
    engine) perform every allocation through {!alloc} with their
    compiler-assigned {!Runtime.Alloc_id.t}; the environment dispatches the
    site to MT or MU according to the build mode and the input profile,
    exactly as the profile-guided instrumentation rewrites allocation call
    sites (§4.3.1). *)

type t

val create :
  ?profile:Runtime.Profile.t ->
  ?backing:Allocators.Backing.t ->
  Config.t ->
  (t, string) result
(** [profile] is required by [Alloc] and [Mpk] modes to know which sites
    move to MU (an empty profile is legal: nothing moves — that is what
    makes an unprofiled enforcement build crash on shared data).
    [backing] puts both of this environment's pools on a shared page
    budget (fleet memory contention); exhaustion raises [Out_of_memory]
    from {!alloc}. *)

val config : t -> Config.t
val machine : t -> Sim.Machine.t
val pkalloc : t -> Allocators.Pkalloc.t
val gate : t -> Runtime.Gate.t
(** The {e active} thread's gate. *)

val profiler : t -> Runtime.Profiler.t option

val mitigator : t -> Runtime.Mitigator.t option
(** The fault-recovery interposer, present when the configuration is
    [Mpk] with [mitigation = Some _].  Its metadata table is fed by
    {!alloc}/{!realloc}/{!dealloc} like the profiler's, and its Promote
    policy feeds back into {!alloc}'s placement via pkalloc's
    site-override table. *)

(* {2 The global-allocator surface used by application code} *)

val alloc : t -> site:Runtime.Alloc_id.t -> int -> int
(** @raise Out_of_memory when the pool is exhausted. *)

val dealloc : t -> int -> unit

val realloc : t -> int -> int -> int
(** Stays in the originating pool. @raise Out_of_memory on exhaustion. *)

val malloc_untrusted : t -> int -> int
(** The untrusted compartment's own malloc: always MU, never profiled
    (the provenance runtime only tracks allocations from MT).
    @raise Out_of_memory on exhaustion. *)

(* {2 Threads}

   PKRU-Safe supports multi-threaded programs: PKRU is a per-thread
   register and every thread carries its own compartment stack (§3.3).
   Threads here are cooperative simulation threads over one machine. *)

type thread

val main_thread : t -> thread
val spawn_thread : t -> thread
(** A fresh thread starts, like a new kernel thread, with full access;
    its gates and compartment stack are its own. *)

val run_on_thread : t -> thread -> (unit -> 'a) -> 'a
(** Executes a block as the given thread: the machine's current hart and
    the environment's active gate are switched for its duration
    (exception-safe, re-entrant). *)

val thread_cpu : thread -> Sim.Cpu.t
val thread_gate : thread -> Runtime.Gate.t

val activate_thread : t -> thread -> thread
(** Non-bracketed thread switch, returning the previously active thread.
    For effect-based schedulers whose slices cross [Effect.perform]
    boundaries (where {!run_on_thread}'s bracket cannot reach): the
    scheduler restores the returned thread itself after each slice. *)

(* {2 The compartment boundary} *)

val ffi_call : t -> (unit -> 'a) -> 'a
(** A call from T to an untrusted-library function: bracketed by call
    gates when the build has them, a plain call otherwise. *)

val callback : t -> (unit -> 'a) -> 'a
(** A call from U to an exported/address-taken T function (reverse
    gate). *)

(* {2 Results and statistics} *)

val recorded_profile : t -> Runtime.Profile.t
(** The profile collected so far. @raise Invalid_argument unless this is a
    [Profiling] build. *)

val transitions : t -> int
(** Compartment transitions summed over every thread. *)

val reset_counters : t -> unit
(** Zeroes cycle and transition counters (between warm-up and timed runs). *)

val cycles : t -> int
val percent_untrusted_bytes : t -> float
(** Percentage of the trusted side's global-allocator traffic (by bytes)
    that the build redirected to MU — the "%MU" column of Table 1.  The
    untrusted compartment's own mallocs are excluded, as in the paper. *)

val t_heap_bytes : t -> int * int
(** [(bytes kept in MT, bytes moved to MU)] of trusted global-allocator
    traffic — the inputs to {!percent_untrusted_bytes}. *)

val sites_used : t -> int
(** Distinct allocation sites that executed at least once. *)

val sites_moved : t -> int
(** Of those, sites the build placed in MU (the "274 of 12088" statistic
    of §5.3). *)

val stack_frames : t -> string list
(** The active thread's compartment nesting, root first — register this
    as the {!Telemetry.Sampler} provider to attribute cycle samples to
    compartments.  Pure reads; charges no cycles. *)

(* {2 Heap census and provenance audit} *)

val track_census : t -> unit
(** Start maintaining the census live-object table (address, size,
    AllocId and birth cycle of every live {!alloc}/{!realloc} object,
    both pools).  Opt-in and idempotent: a run that never calls this does
    no census bookkeeping at all.  Required before {!census_snapshot}
    reports per-site data, and before the provenance auditor can
    attribute leaks. *)

val census_metadata : t -> Runtime.Metadata.t option
(** The census live-object table ([None] until {!track_census}) — pass
    it to the auditor's scan as its attribution source. *)

val census_snapshot : t -> unit -> Telemetry.Census.snapshot
(** The {!Telemetry.Census} snapshot provider: per-pool (MT/MU) live
    bytes / objects / fragmentation / high-water marks from pkalloc, plus
    per-AllocId live bytes and the log₂ object-age histogram from the
    census table (empty until {!track_census}).  Pure reads; charges no
    cycles.  Install with
    [Telemetry.Census.install ~provider:(Env.census_snapshot env) c]. *)

val flight_context : t -> unit -> Util.Json.t
(** The {!Telemetry.Flight} context provider: simulated cycles, each
    hart's live PKRU, the active gate's nesting depth, total transitions,
    the last fault delivered and — when a mitigator tracks metadata — the
    allocation that fault landed in ([suspect_alloc]); when a census is
    installed, its latest heap snapshot rides along as [census].  Pure
    reads; charges no cycles.  Install with
    [Telemetry.Flight.set_context recorder (Env.flight_context env)]. *)
