(* A per-hart, direct-mapped software TLB over the simulated page table.

   Each entry caches one resolved page together with a permission mask
   precomputed from the page protection bits, the page's protection key
   and the PKRU value at fill time, so the common-case access check is:
   index, tag-compare, mask-test.  No Hashtbl probe, no region walk, no
   PKRU decode.

   Correctness rests on the invalidation protocol, not on eager flushes:
   {ul
   {- every entry records the page table's {e mapping epoch} at fill time;
      [Page_table.reserve]/[map_now]/[mprotect]/[pkey_mprotect] bump that
      epoch, so entries filled before any mapping change miss;}
   {- every entry records the hart's {e PKRU epoch} ([Cpu.pkru_epoch],
      bumped by every PKRU write through [Cpu.set_pkru]/[Cpu.wrpkru]) and,
      belt-and-braces, the raw PKRU value the mask was computed under, so
      entries survive neither a WRPKRU (gate entry/exit, signal-handler
      swaps) nor a direct [cpu.pkru <- ...] assignment from test code.}}

   The TLB is architecturally invisible: it charges no cycles and emits
   no events, so simulated cycle counts and telemetry traces are
   bit-identical with the TLB on or off (asserted by test/test_tlb.ml). *)

let bits = 8
let size = 1 lsl bits
let index_mask = size - 1

let read_bit = 1
let write_bit = 2
let execute_bit = 4

let access_bit = function
  | Vmm.Fault.Read -> read_bit
  | Vmm.Fault.Write -> write_bit
  | Vmm.Fault.Execute -> execute_bit

type stats = {
  hits : int;
  misses : int;
  flushes : int;
}

type t = {
  tags : int array; (* page number, -1 = invalid *)
  pages : Vmm.Page.t array;
  perms : int array; (* read/write/execute bits permitted for the entry *)
  map_epochs : int array;
  pkru_epochs : int array;
  pkrus : int array; (* raw PKRU value the mask was computed under *)
  mutable seen_map_epoch : int;
  mutable seen_pkru_epoch : int;
  mutable hits : int;
  mutable misses : int;
  mutable flushes : int;
}

let create () =
  let dummy = Vmm.Page.create ~prot:Vmm.Prot.none ~pkey:Mpk.Pkey.default in
  {
    tags = Array.make size (-1);
    pages = Array.make size dummy;
    perms = Array.make size 0;
    map_epochs = Array.make size (-1);
    pkru_epochs = Array.make size (-1);
    pkrus = Array.make size (-1);
    seen_map_epoch = 0;
    seen_pkru_epoch = 0;
    hits = 0;
    misses = 0;
    flushes = 0;
  }

(* The mask mirrors [Machine.check_page] exactly: a read needs the page
   readable and the key's AD bit clear; a write additionally needs the
   prot write bit and WD clear; execute follows the read rule on the key
   side (AD governs instruction fetch, as on real MPK hardware). *)
let perm_mask (page : Vmm.Page.t) pkru =
  let prot = page.Vmm.Page.prot in
  let key_bits = Mpk.Pkru.access_bits pkru page.Vmm.Page.pkey in
  (if prot.Vmm.Prot.read && key_bits land 1 <> 0 then read_bit else 0)
  lor (if prot.Vmm.Prot.write && key_bits land 2 <> 0 then write_bit else 0)
  lor (if prot.Vmm.Prot.execute && key_bits land 1 <> 0 then execute_bit else 0)

(* Lazy invalidation bookkeeping: the first lookup under a new epoch
   counts one flush generation, so [flushes] reports how many
   invalidation events (mapping changes or PKRU writes) this hart's TLB
   actually observed. *)
let note_epochs t ~map_epoch ~pkru_epoch =
  if map_epoch <> t.seen_map_epoch then begin
    t.seen_map_epoch <- map_epoch;
    t.flushes <- t.flushes + 1
  end;
  if pkru_epoch <> t.seen_pkru_epoch then begin
    t.seen_pkru_epoch <- pkru_epoch;
    t.flushes <- t.flushes + 1
  end

(* Indices are masked to [0, size), so the unsafe accessors cannot go out
   of bounds. *)
let lookup t ~map_epoch ~pkru_epoch ~pkru ~access_bit page_number =
  note_epochs t ~map_epoch ~pkru_epoch;
  let i = page_number land index_mask in
  if
    Array.unsafe_get t.tags i = page_number
    && Array.unsafe_get t.map_epochs i = map_epoch
    && Array.unsafe_get t.pkru_epochs i = pkru_epoch
    && Array.unsafe_get t.pkrus i = Mpk.Pkru.to_int pkru
    && Array.unsafe_get t.perms i land access_bit <> 0
  then begin
    t.hits <- t.hits + 1;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    false
  end

let cached_page t page_number = Array.unsafe_get t.pages (page_number land index_mask)

let fill t ~map_epoch ~pkru_epoch ~pkru page_number (page : Vmm.Page.t) =
  let i = page_number land index_mask in
  t.tags.(i) <- page_number;
  t.pages.(i) <- page;
  t.perms.(i) <- perm_mask page pkru;
  t.map_epochs.(i) <- map_epoch;
  t.pkru_epochs.(i) <- pkru_epoch;
  t.pkrus.(i) <- Mpk.Pkru.to_int pkru

let flush t =
  Array.fill t.tags 0 size (-1);
  t.flushes <- t.flushes + 1

let stats t : stats = { hits = t.hits; misses = t.misses; flushes = t.flushes }

let add_stats (a : stats) (b : stats) =
  { hits = a.hits + b.hits; misses = a.misses + b.misses; flushes = a.flushes + b.flushes }

let zero_stats = { hits = 0; misses = 0; flushes = 0 }

let hit_rate (s : stats) =
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total
