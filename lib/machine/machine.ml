type t = {
  page_table : Vmm.Page_table.t;
  mutable cpu : Cpu.t;
  mutable cpus_rev : Cpu.t list;
  mutable ncpus : int;
  signals : Signals.t;
  pkeys : Vmm.Pkeys.t;
  retired : int ref;
  tlb_enabled : bool;
  (* Garmr syscall filter: when [Some trusted], kernel-interface entry
     points ([sys_pkey_mprotect] & co) refuse pkey/page-table mutations
     from a hart whose PKRU cannot read the trusted key (i.e. from U
     residency).  [None] (the default) is fully permissive, and internal
     callers (pkalloc, test setup) go straight to [Vmm.Page_table] /
     [Vmm.Pkeys] anyway, so the filter is invisible when disabled. *)
  mutable syscall_filter : Mpk.Pkey.t option;
}

let create ?cost ?(tlb = true) () =
  let retired = ref 0 in
  let boot = Cpu.create ?cost ~id:0 ~retired () in
  {
    page_table = Vmm.Page_table.create ();
    cpu = boot;
    cpus_rev = [ boot ];
    ncpus = 1;
    signals = Signals.create ();
    pkeys = Vmm.Pkeys.create ();
    retired;
    tlb_enabled = tlb;
    syscall_filter = None;
  }

let spawn_cpu t =
  let cpu = Cpu.create ~cost:t.cpu.Cpu.cost ~id:t.ncpus ~retired:t.retired () in
  t.cpus_rev <- cpu :: t.cpus_rev;
  t.ncpus <- t.ncpus + 1;
  cpu

let cpus t = List.rev t.cpus_rev

(* Telemetry timestamps are whole-machine cycles so that events from
   different harts order consistently in one trace.  The shared
   accumulator (grown by [Cpu.charge]) makes this O(1); telemetry emits
   read it on every event. *)
let total_cycles t = !(t.retired)

let tlb_enabled t = t.tlb_enabled

let tlb_stats t =
  List.fold_left
    (fun acc cpu -> Tlb.add_stats acc (Tlb.stats cpu.Cpu.tlb))
    Tlb.zero_stats t.cpus_rev

let note_thread_switch t ~from_cpu ~to_cpu =
  match !Telemetry.Sink.current with
  | None -> ()
  | Some sink ->
    Telemetry.Sink.emit sink ~ts:(total_cycles t) ~cpu:to_cpu
      (Telemetry.Event.Thread_switch { from_cpu; to_cpu })

(* Non-bracketed hart switch for effect-based schedulers: a [Fun.protect]
   bracket (as in [run_on]) cannot straddle an [Effect.perform], so the
   fleet switches harts around each slice and restores the previous one
   itself.  Returns the previously current hart.  Free of simulated cost,
   like [run_on]: the scheduler's own overhead is not the workload's. *)
let switch_to_cpu t cpu =
  let previous = t.cpu in
  if previous != cpu then begin
    note_thread_switch t ~from_cpu:previous.Cpu.id ~to_cpu:cpu.Cpu.id;
    t.cpu <- cpu
  end;
  previous

let run_on t cpu f =
  let previous = t.cpu in
  note_thread_switch t ~from_cpu:previous.Cpu.id ~to_cpu:cpu.Cpu.id;
  t.cpu <- cpu;
  Fun.protect
    ~finally:(fun () ->
      note_thread_switch t ~from_cpu:cpu.Cpu.id ~to_cpu:previous.Cpu.id;
      t.cpu <- previous)
    f

let page_size = Vmm.Layout.page_size

let check_page t access (page : Vmm.Page.t) =
  let prot_ok =
    match access with
    | Vmm.Fault.Read -> page.prot.Vmm.Prot.read
    | Vmm.Fault.Write -> page.prot.Vmm.Prot.write
    | Vmm.Fault.Execute -> page.prot.Vmm.Prot.execute
  in
  if not prot_ok then Some Vmm.Fault.Prot_violation
  else
    let key = page.pkey in
    let pkru = t.cpu.Cpu.pkru in
    let pkey_ok =
      match access with
      | Vmm.Fault.Read | Vmm.Fault.Execute -> Mpk.Pkru.can_read pkru key
      | Vmm.Fault.Write -> Mpk.Pkru.can_write pkru key
    in
    if pkey_ok then None else Some (Vmm.Fault.Pkey_violation key)

let probe t access addr =
  match Vmm.Page_table.lookup t.page_table addr with
  | None -> Some Vmm.Fault.Not_mapped
  | Some page -> check_page t access page

(* Fault-path telemetry: describe the fault, note the SIGSEGV dispatch, and
   time handler servicing (the cycles charged between dispatch and the
   handler's return, i.e. signal dispatch plus whatever the handler ran). *)
let note_fault t (fault : Vmm.Fault.t) =
  match !Telemetry.Sink.current with
  | None -> ()
  | Some sink ->
    let ts = total_cycles t in
    let cpu = t.cpu.Cpu.id in
    (match fault.Vmm.Fault.kind with
    | Vmm.Fault.Pkey_violation key ->
      Telemetry.Sink.emit sink ~ts ~cpu
        (Telemetry.Event.Mpk_fault
           { addr = fault.Vmm.Fault.addr; pkey = Mpk.Pkey.to_int key })
    | Vmm.Fault.Not_mapped ->
      Telemetry.Sink.emit sink ~ts ~cpu
        (Telemetry.Event.Page_fault
           { addr = fault.Vmm.Fault.addr; kind = Telemetry.Event.Not_mapped })
    | Vmm.Fault.Prot_violation ->
      Telemetry.Sink.emit sink ~ts ~cpu
        (Telemetry.Event.Page_fault
           { addr = fault.Vmm.Fault.addr; kind = Telemetry.Event.Prot_violation }));
    Telemetry.Sink.emit sink ~ts ~cpu
      (Telemetry.Event.Signal_dispatch { signal = Telemetry.Event.Segv })

let deliver_fault t fault =
  note_fault t fault;
  let before = total_cycles t in
  Signals.deliver_segv t.signals ~cpu:t.cpu fault;
  match !Telemetry.Sink.current with
  | None -> ()
  | Some sink -> Telemetry.Sink.observe sink "fault_service_cycles" (total_cycles t - before)

(* Resolve one in-page access, delivering faults until it succeeds.  The
   retry bound breaks the livelock a buggy handler would otherwise cause
   (return-from-handler normally re-executes the faulting instruction);
   when it trips, the exception carries the kind of the last fault
   actually delivered, not a made-up one. *)
let resolve t access addr =
  let rec attempt retries last_kind =
    if retries = 0 then
      raise (Vmm.Fault.Unhandled { Vmm.Fault.addr; access; kind = last_kind });
    let faults_before = Vmm.Page_table.demand_faults t.page_table in
    match Vmm.Page_table.lookup t.page_table addr with
    | None ->
      Cpu.charge t.cpu t.cpu.Cpu.cost.Cost.signal_dispatch;
      deliver_fault t { Vmm.Fault.addr; access; kind = Vmm.Fault.Not_mapped };
      attempt (retries - 1) Vmm.Fault.Not_mapped
    | Some page ->
      if Vmm.Page_table.demand_faults t.page_table > faults_before then begin
        Cpu.charge t.cpu t.cpu.Cpu.cost.Cost.soft_page_fault;
        match !Telemetry.Sink.current with
        | None -> ()
        | Some sink ->
          Telemetry.Sink.emit sink ~ts:(total_cycles t) ~cpu:t.cpu.Cpu.id
            (Telemetry.Event.Page_fault { addr; kind = Telemetry.Event.Demand_paged })
      end;
      (match check_page t access page with
      | None -> page
      | Some kind ->
        Cpu.charge t.cpu t.cpu.Cpu.cost.Cost.signal_dispatch;
        deliver_fault t { Vmm.Fault.addr; access; kind };
        attempt (retries - 1) kind)
  in
  (* The seed kind is never observed: retries start positive, and every
     recursive call threads the kind of a delivered fault. *)
  attempt 64 Vmm.Fault.Prot_violation

(* The checked-access fast path.  A TLB hit proves the slow path would
   have succeeded without delivering any fault or materialising any page
   (the entry is current under the mapping epoch, the PKRU epoch and the
   raw PKRU value), so skipping [resolve] is architecturally invisible:
   no cycles or events differ.  Misses — including every access that
   would fault, single-step, or demand-page — fall through to [resolve]
   and refill with post-handler epochs (the final successful check ran
   under exactly that state). *)
let translate t access abit addr =
  if t.tlb_enabled then begin
    let page_number = Vmm.Layout.page_of_addr addr in
    let tlb = t.cpu.Cpu.tlb in
    if
      Tlb.lookup tlb
        ~map_epoch:(Vmm.Page_table.epoch t.page_table)
        ~pkru_epoch:t.cpu.Cpu.pkru_epoch ~pkru:t.cpu.Cpu.pkru ~access_bit:abit
        page_number
    then Tlb.cached_page tlb page_number
    else begin
      let page = resolve t access addr in
      Tlb.fill tlb
        ~map_epoch:(Vmm.Page_table.epoch t.page_table)
        ~pkru_epoch:t.cpu.Cpu.pkru_epoch ~pkru:t.cpu.Cpu.pkru page_number page;
      page
    end
  end
  else resolve t access addr

(* The trap flag fires after the instruction completes (x86 #DB). *)
let post_access t =
  if t.cpu.Cpu.trap_flag then begin
    t.cpu.Cpu.trap_flag <- false;
    Cpu.charge t.cpu t.cpu.Cpu.cost.Cost.signal_dispatch;
    (match !Telemetry.Sink.current with
    | None -> ()
    | Some sink ->
      Telemetry.Sink.emit sink ~ts:(total_cycles t) ~cpu:t.cpu.Cpu.id
        (Telemetry.Event.Signal_dispatch { signal = Telemetry.Event.Trap }));
    Signals.deliver_trap t.signals
  end

(* The common widths use the runtime's fixed-width accessors instead of a
   byte loop.  Results are bit-for-bit what the loop produced: values are
   accumulated modulo 2^63 (OCaml int), so the 8-byte case masks away the
   64th bit. *)
let rec read_le t addr len =
  let offset = Vmm.Layout.page_offset addr in
  if offset + len <= page_size then begin
    Cpu.charge t.cpu t.cpu.Cpu.cost.Cost.load;
    let page = translate t Vmm.Fault.Read Tlb.read_bit addr in
    let data = page.Vmm.Page.data in
    let v =
      match len with
      | 1 -> Bytes.get_uint8 data offset
      | 2 -> Bytes.get_uint16_le data offset
      | 4 -> Int32.to_int (Bytes.get_int32_le data offset) land 0xFFFF_FFFF
      | 8 -> Int64.to_int (Bytes.get_int64_le data offset)
      | _ ->
        let v = ref 0 in
        for i = len - 1 downto 0 do
          v := (!v lsl 8) lor Char.code (Bytes.get data (offset + i))
        done;
        !v
    in
    post_access t;
    v
  end
  else begin
    (* Page-straddling access: split at the boundary. *)
    let first_len = page_size - offset in
    let low = read_le t addr first_len in
    let high = read_le t (addr + first_len) (len - first_len) in
    (high lsl (8 * first_len)) lor low
  end

let rec write_le t addr len v =
  let offset = Vmm.Layout.page_offset addr in
  if offset + len <= page_size then begin
    Cpu.charge t.cpu t.cpu.Cpu.cost.Cost.store;
    let page = translate t Vmm.Fault.Write Tlb.write_bit addr in
    let data = page.Vmm.Page.data in
    (match len with
    | 1 -> Bytes.set_uint8 data offset (v land 0xFF)
    | 2 -> Bytes.set_uint16_le data offset (v land 0xFFFF)
    | 4 -> Bytes.set_int32_le data offset (Int32.of_int v)
    | 8 ->
      (* The loop stored (v lsr 56) land 0xFF as the top byte — bits 56-62
         of a 63-bit int, never a 64th bit — so mask the sign extension. *)
      Bytes.set_int64_le data offset (Int64.logand (Int64.of_int v) Int64.max_int)
    | _ ->
      for i = 0 to len - 1 do
        Bytes.set data (offset + i) (Char.chr ((v lsr (8 * i)) land 0xFF))
      done);
    post_access t
  end
  else begin
    let first_len = page_size - offset in
    write_le t addr first_len v;
    write_le t (addr + first_len) (len - first_len) (v asr (8 * first_len))
  end

let read_u8 t addr = read_le t addr 1
let read_u16 t addr = read_le t addr 2
let read_u32 t addr = read_le t addr 4
let read_u64 t addr = read_le t addr 8
let write_u8 t addr v = write_le t addr 1 v
let write_u16 t addr v = write_le t addr 2 v
let write_u32 t addr v = write_le t addr 4 v
let write_u64 t addr v = write_le t addr 8 v

(* Floats are stored via their bit pattern.  OCaml ints hold 63 bits, so we
   move the top byte separately. *)
let read_f64 t addr =
  let low = read_le t addr 7 in
  let high = read_le t (addr + 7) 1 in
  Int64.float_of_bits Int64.(logor (of_int low) (shift_left (of_int high) 56))

let write_f64 t addr f =
  let bits = Int64.bits_of_float f in
  write_le t addr 7 Int64.(to_int (logand bits 0xFF_FFFF_FFFF_FFFFL));
  write_le t (addr + 7) 1 Int64.(to_int (logand (shift_right_logical bits 56) 0xFFL))

(* Batched slot access: one TLB probe covers both constituent fixed-width
   accesses of an aligned 8-byte slot.  Sound because a hit proves both
   loads (7+1 bytes, same page) would hit too — nothing between them can
   change TLB state — and with the trap flag clear both [post_access]
   calls are no-ops.  The two per-access charges collapse into one charge
   of the same total, so cycles, faults and event traces are bit-identical
   to the split path; only TLB hit counts differ (one probe, not two). *)
let slot_page t abit addr =
  if t.tlb_enabled && not t.cpu.Cpu.trap_flag && Vmm.Layout.page_offset addr + 8 <= page_size
  then begin
    let page_number = Vmm.Layout.page_of_addr addr in
    let tlb = t.cpu.Cpu.tlb in
    if
      Tlb.lookup tlb
        ~map_epoch:(Vmm.Page_table.epoch t.page_table)
        ~pkru_epoch:t.cpu.Cpu.pkru_epoch ~pkru:t.cpu.Cpu.pkru ~access_bit:abit page_number
    then Some (Tlb.cached_page tlb page_number)
    else None
  end
  else None

let read_f64_batched t addr =
  match slot_page t Tlb.read_bit addr with
  | Some page ->
    Cpu.charge t.cpu (2 * t.cpu.Cpu.cost.Cost.load);
    Int64.float_of_bits (Bytes.get_int64_le page.Vmm.Page.data (Vmm.Layout.page_offset addr))
  | None -> read_f64 t addr

let write_f64_batched t addr f =
  match slot_page t Tlb.write_bit addr with
  | Some page ->
    Cpu.charge t.cpu (2 * t.cpu.Cpu.cost.Cost.store);
    Bytes.set_int64_le page.Vmm.Page.data (Vmm.Layout.page_offset addr) (Int64.bits_of_float f)
  | None -> write_f64 t addr f

let read_bytes t addr len =
  let out = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let offset = Vmm.Layout.page_offset a in
    let chunk = min (len - !pos) (page_size - offset) in
    Cpu.charge t.cpu (t.cpu.Cpu.cost.Cost.load * ((chunk + 7) / 8));
    let page = translate t Vmm.Fault.Read Tlb.read_bit a in
    Bytes.blit page.Vmm.Page.data offset out !pos chunk;
    post_access t;
    pos := !pos + chunk
  done;
  out

let write_bytes t addr src =
  let len = Bytes.length src in
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let offset = Vmm.Layout.page_offset a in
    let chunk = min (len - !pos) (page_size - offset) in
    Cpu.charge t.cpu (t.cpu.Cpu.cost.Cost.store * ((chunk + 7) / 8));
    let page = translate t Vmm.Fault.Write Tlb.write_bit a in
    Bytes.blit src !pos page.Vmm.Page.data offset chunk;
    post_access t;
    pos := !pos + chunk
  done

let write_string t addr s = write_bytes t addr (Bytes.of_string s)

let memset t addr byte len =
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let offset = Vmm.Layout.page_offset a in
    let chunk = min (len - !pos) (page_size - offset) in
    Cpu.charge t.cpu (t.cpu.Cpu.cost.Cost.store * ((chunk + 7) / 8));
    let page = translate t Vmm.Fault.Write Tlb.write_bit a in
    Bytes.fill page.Vmm.Page.data offset chunk byte;
    post_access t;
    pos := !pos + chunk
  done

(* Privileged path: used by the fault handler ("operates as part of T and
   is able to inspect trusted memory") and by test setup. *)
let priv_page t addr =
  match Vmm.Page_table.lookup t.page_table addr with
  | Some page -> page
  | None ->
    raise (Vmm.Fault.Unhandled { Vmm.Fault.addr; access = Vmm.Fault.Read; kind = Vmm.Fault.Not_mapped })

let priv_read_bytes t addr len =
  let out = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let offset = Vmm.Layout.page_offset a in
    let chunk = min (len - !pos) (page_size - offset) in
    let page = priv_page t a in
    Bytes.blit page.Vmm.Page.data offset out !pos chunk;
    pos := !pos + chunk
  done;
  out

let priv_write_bytes t addr src =
  let len = Bytes.length src in
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let offset = Vmm.Layout.page_offset a in
    let chunk = min (len - !pos) (page_size - offset) in
    let page = priv_page t a in
    Bytes.blit src !pos page.Vmm.Page.data offset chunk;
    pos := !pos + chunk
  done

let priv_read_u64 t addr =
  let b = priv_read_bytes t addr 8 in
  let v = ref 0 in
  for i = 7 downto 0 do
    v := (!v lsl 8) lor Char.code (Bytes.get b i)
  done;
  !v

let priv_write_u64 t addr v =
  let b = Bytes.create 8 in
  for i = 0 to 7 do
    Bytes.set b i (Char.chr ((v lsr (8 * i)) land 0xFF))
  done;
  priv_write_bytes t addr b

let priv_read_string t addr len = Bytes.to_string (priv_read_bytes t addr len)

let charge t n = Cpu.charge t.cpu n

let cycles = total_cycles

(* --- Kernel interface (Garmr syscall-confusion surface) ------------------

   The [sys_*] entry points model the syscalls an in-process attacker can
   issue to confuse the kernel about pkey-tagged memory: retagging pages
   with pkey_mprotect, dropping protection with mprotect, or churning the
   key allocator.  With the filter disarmed they forward directly to the
   VMM, byte-for-byte what a direct [Vmm.Page_table] / [Vmm.Pkeys] call
   does.  With the filter armed, a request from a hart resident in U
   (PKRU cannot read the trusted key) is refused with EPERM, a sink tick
   and a flight dump.  Kernel-side work charges no simulated user cycles
   either way, so arming the filter never perturbs benign traces. *)

let set_syscall_filter t key = t.syscall_filter <- key
let syscall_filter t = t.syscall_filter

let sys_note counter =
  match !Telemetry.Sink.current with
  | None -> ()
  | Some sink -> Telemetry.Sink.incr sink counter

let syscall_check t name =
  match t.syscall_filter with
  | None -> Ok ()
  | Some trusted ->
    if Mpk.Pkru.can_read t.cpu.Cpu.pkru trusted then Ok ()
    else begin
      sys_note "machine.syscall_refused";
      Telemetry.Flight.dump ~reason:"syscall filter: pkey/page-table mutation refused from U"
        ~details:
          [
            ("syscall", Util.Json.String name);
            ("hart", Util.Json.Int t.cpu.Cpu.id);
            ("pkru", Util.Json.Int (Mpk.Pkru.to_int t.cpu.Cpu.pkru));
          ]
        ();
      Error
        (Printf.sprintf "EPERM: %s refused from untrusted residency (hart %d)" name t.cpu.Cpu.id)
    end

let sys_pkey_mprotect t ~base ~size pkey =
  match syscall_check t "pkey_mprotect" with
  | Error _ as e -> e
  | Ok () ->
    sys_note "machine.sys_pkey_mprotect";
    Vmm.Page_table.pkey_mprotect t.page_table ~base ~size pkey

let sys_mprotect t ~base ~size prot =
  match syscall_check t "mprotect" with
  | Error _ as e -> e
  | Ok () ->
    sys_note "machine.sys_mprotect";
    Vmm.Page_table.mprotect t.page_table ~base ~size prot

let sys_pkey_alloc t =
  match syscall_check t "pkey_alloc" with
  | Error msg -> Error msg
  | Ok () ->
    sys_note "machine.sys_pkey_alloc";
    Vmm.Pkeys.pkey_alloc t.pkeys

let sys_pkey_free t key =
  match syscall_check t "pkey_free" with
  | Error _ as e -> e
  | Ok () ->
    sys_note "machine.sys_pkey_free";
    Vmm.Pkeys.pkey_free t.pkeys key
