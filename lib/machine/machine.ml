type t = {
  page_table : Vmm.Page_table.t;
  mutable cpu : Cpu.t;
  mutable cpus : Cpu.t list;
  signals : Signals.t;
  pkeys : Vmm.Pkeys.t;
}

let create ?cost () =
  let boot = Cpu.create ?cost ~id:0 () in
  {
    page_table = Vmm.Page_table.create ();
    cpu = boot;
    cpus = [ boot ];
    signals = Signals.create ();
    pkeys = Vmm.Pkeys.create ();
  }

let spawn_cpu t =
  let cpu = Cpu.create ~cost:t.cpu.Cpu.cost ~id:(List.length t.cpus) () in
  t.cpus <- t.cpus @ [ cpu ];
  cpu

(* Telemetry timestamps are whole-machine cycles so that events from
   different harts order consistently in one trace. *)
let total_cycles t = List.fold_left (fun acc cpu -> acc + Cpu.cycles cpu) 0 t.cpus

let note_thread_switch t ~from_cpu ~to_cpu =
  match !Telemetry.Sink.current with
  | None -> ()
  | Some sink ->
    Telemetry.Sink.emit sink ~ts:(total_cycles t) ~cpu:to_cpu
      (Telemetry.Event.Thread_switch { from_cpu; to_cpu })

let run_on t cpu f =
  let previous = t.cpu in
  note_thread_switch t ~from_cpu:previous.Cpu.id ~to_cpu:cpu.Cpu.id;
  t.cpu <- cpu;
  Fun.protect
    ~finally:(fun () ->
      note_thread_switch t ~from_cpu:cpu.Cpu.id ~to_cpu:previous.Cpu.id;
      t.cpu <- previous)
    f

let page_size = Vmm.Layout.page_size

let check_page t access (page : Vmm.Page.t) =
  let prot_ok =
    match access with
    | Vmm.Fault.Read -> page.prot.Vmm.Prot.read
    | Vmm.Fault.Write -> page.prot.Vmm.Prot.write
    | Vmm.Fault.Execute -> page.prot.Vmm.Prot.execute
  in
  if not prot_ok then Some Vmm.Fault.Prot_violation
  else
    let key = page.pkey in
    let pkru = t.cpu.Cpu.pkru in
    let pkey_ok =
      match access with
      | Vmm.Fault.Read | Vmm.Fault.Execute -> Mpk.Pkru.can_read pkru key
      | Vmm.Fault.Write -> Mpk.Pkru.can_write pkru key
    in
    if pkey_ok then None else Some (Vmm.Fault.Pkey_violation key)

let probe t access addr =
  match Vmm.Page_table.lookup t.page_table addr with
  | None -> Some Vmm.Fault.Not_mapped
  | Some page -> check_page t access page

(* Fault-path telemetry: describe the fault, note the SIGSEGV dispatch, and
   time handler servicing (the cycles charged between dispatch and the
   handler's return, i.e. signal dispatch plus whatever the handler ran). *)
let note_fault t (fault : Vmm.Fault.t) =
  match !Telemetry.Sink.current with
  | None -> ()
  | Some sink ->
    let ts = total_cycles t in
    let cpu = t.cpu.Cpu.id in
    (match fault.Vmm.Fault.kind with
    | Vmm.Fault.Pkey_violation key ->
      Telemetry.Sink.emit sink ~ts ~cpu
        (Telemetry.Event.Mpk_fault
           { addr = fault.Vmm.Fault.addr; pkey = Mpk.Pkey.to_int key })
    | Vmm.Fault.Not_mapped ->
      Telemetry.Sink.emit sink ~ts ~cpu
        (Telemetry.Event.Page_fault
           { addr = fault.Vmm.Fault.addr; kind = Telemetry.Event.Not_mapped })
    | Vmm.Fault.Prot_violation ->
      Telemetry.Sink.emit sink ~ts ~cpu
        (Telemetry.Event.Page_fault
           { addr = fault.Vmm.Fault.addr; kind = Telemetry.Event.Prot_violation }));
    Telemetry.Sink.emit sink ~ts ~cpu
      (Telemetry.Event.Signal_dispatch { signal = Telemetry.Event.Segv })

let deliver_fault t fault =
  note_fault t fault;
  let before = total_cycles t in
  Signals.deliver_segv t.signals fault;
  match !Telemetry.Sink.current with
  | None -> ()
  | Some sink -> Telemetry.Sink.observe sink "fault_service_cycles" (total_cycles t - before)

(* Resolve one in-page access, delivering faults until it succeeds.  The
   retry bound breaks the livelock a buggy handler would otherwise cause
   (return-from-handler normally re-executes the faulting instruction). *)
let resolve t access addr =
  let rec attempt retries =
    if retries = 0 then
      raise (Vmm.Fault.Unhandled { Vmm.Fault.addr; access; kind = Vmm.Fault.Prot_violation });
    let faults_before = Vmm.Page_table.demand_faults t.page_table in
    match Vmm.Page_table.lookup t.page_table addr with
    | None ->
      Cpu.charge t.cpu t.cpu.Cpu.cost.Cost.signal_dispatch;
      deliver_fault t { Vmm.Fault.addr; access; kind = Vmm.Fault.Not_mapped };
      attempt (retries - 1)
    | Some page ->
      if Vmm.Page_table.demand_faults t.page_table > faults_before then begin
        Cpu.charge t.cpu t.cpu.Cpu.cost.Cost.soft_page_fault;
        match !Telemetry.Sink.current with
        | None -> ()
        | Some sink ->
          Telemetry.Sink.emit sink ~ts:(total_cycles t) ~cpu:t.cpu.Cpu.id
            (Telemetry.Event.Page_fault { addr; kind = Telemetry.Event.Demand_paged })
      end;
      (match check_page t access page with
      | None -> page
      | Some kind ->
        Cpu.charge t.cpu t.cpu.Cpu.cost.Cost.signal_dispatch;
        deliver_fault t { Vmm.Fault.addr; access; kind };
        attempt (retries - 1))
  in
  attempt 64

(* The trap flag fires after the instruction completes (x86 #DB). *)
let post_access t =
  if t.cpu.Cpu.trap_flag then begin
    t.cpu.Cpu.trap_flag <- false;
    Cpu.charge t.cpu t.cpu.Cpu.cost.Cost.signal_dispatch;
    (match !Telemetry.Sink.current with
    | None -> ()
    | Some sink ->
      Telemetry.Sink.emit sink ~ts:(total_cycles t) ~cpu:t.cpu.Cpu.id
        (Telemetry.Event.Signal_dispatch { signal = Telemetry.Event.Trap }));
    Signals.deliver_trap t.signals
  end

let rec read_le t addr len =
  let offset = Vmm.Layout.page_offset addr in
  if offset + len <= page_size then begin
    Cpu.charge t.cpu t.cpu.Cpu.cost.Cost.load;
    let page = resolve t Vmm.Fault.Read addr in
    let v = ref 0 in
    for i = len - 1 downto 0 do
      v := (!v lsl 8) lor Char.code (Bytes.get page.Vmm.Page.data (offset + i))
    done;
    post_access t;
    !v
  end
  else begin
    (* Page-straddling access: split at the boundary. *)
    let first_len = page_size - offset in
    let low = read_le t addr first_len in
    let high = read_le t (addr + first_len) (len - first_len) in
    (high lsl (8 * first_len)) lor low
  end

let rec write_le t addr len v =
  let offset = Vmm.Layout.page_offset addr in
  if offset + len <= page_size then begin
    Cpu.charge t.cpu t.cpu.Cpu.cost.Cost.store;
    let page = resolve t Vmm.Fault.Write addr in
    for i = 0 to len - 1 do
      Bytes.set page.Vmm.Page.data (offset + i) (Char.chr ((v lsr (8 * i)) land 0xFF))
    done;
    post_access t
  end
  else begin
    let first_len = page_size - offset in
    write_le t addr first_len v;
    write_le t (addr + first_len) (len - first_len) (v asr (8 * first_len))
  end

let read_u8 t addr = read_le t addr 1
let read_u16 t addr = read_le t addr 2
let read_u32 t addr = read_le t addr 4
let read_u64 t addr = read_le t addr 8
let write_u8 t addr v = write_le t addr 1 v
let write_u16 t addr v = write_le t addr 2 v
let write_u32 t addr v = write_le t addr 4 v
let write_u64 t addr v = write_le t addr 8 v

(* Floats are stored via their bit pattern.  OCaml ints hold 63 bits, so we
   move the top byte separately. *)
let read_f64 t addr =
  let low = read_le t addr 7 in
  let high = read_le t (addr + 7) 1 in
  Int64.float_of_bits Int64.(logor (of_int low) (shift_left (of_int high) 56))

let write_f64 t addr f =
  let bits = Int64.bits_of_float f in
  write_le t addr 7 Int64.(to_int (logand bits 0xFF_FFFF_FFFF_FFFFL));
  write_le t (addr + 7) 1 Int64.(to_int (logand (shift_right_logical bits 56) 0xFFL))

let read_bytes t addr len =
  let out = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let offset = Vmm.Layout.page_offset a in
    let chunk = min (len - !pos) (page_size - offset) in
    Cpu.charge t.cpu (t.cpu.Cpu.cost.Cost.load * ((chunk + 7) / 8));
    let page = resolve t Vmm.Fault.Read a in
    Bytes.blit page.Vmm.Page.data offset out !pos chunk;
    post_access t;
    pos := !pos + chunk
  done;
  out

let write_bytes t addr src =
  let len = Bytes.length src in
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let offset = Vmm.Layout.page_offset a in
    let chunk = min (len - !pos) (page_size - offset) in
    Cpu.charge t.cpu (t.cpu.Cpu.cost.Cost.store * ((chunk + 7) / 8));
    let page = resolve t Vmm.Fault.Write a in
    Bytes.blit src !pos page.Vmm.Page.data offset chunk;
    post_access t;
    pos := !pos + chunk
  done

let write_string t addr s = write_bytes t addr (Bytes.of_string s)

let memset t addr byte len =
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let offset = Vmm.Layout.page_offset a in
    let chunk = min (len - !pos) (page_size - offset) in
    Cpu.charge t.cpu (t.cpu.Cpu.cost.Cost.store * ((chunk + 7) / 8));
    let page = resolve t Vmm.Fault.Write a in
    Bytes.fill page.Vmm.Page.data offset chunk byte;
    post_access t;
    pos := !pos + chunk
  done

(* Privileged path: used by the fault handler ("operates as part of T and
   is able to inspect trusted memory") and by test setup. *)
let priv_page t addr =
  match Vmm.Page_table.lookup t.page_table addr with
  | Some page -> page
  | None ->
    raise (Vmm.Fault.Unhandled { Vmm.Fault.addr; access = Vmm.Fault.Read; kind = Vmm.Fault.Not_mapped })

let priv_read_bytes t addr len =
  let out = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let offset = Vmm.Layout.page_offset a in
    let chunk = min (len - !pos) (page_size - offset) in
    let page = priv_page t a in
    Bytes.blit page.Vmm.Page.data offset out !pos chunk;
    pos := !pos + chunk
  done;
  out

let priv_write_bytes t addr src =
  let len = Bytes.length src in
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let offset = Vmm.Layout.page_offset a in
    let chunk = min (len - !pos) (page_size - offset) in
    let page = priv_page t a in
    Bytes.blit src !pos page.Vmm.Page.data offset chunk;
    pos := !pos + chunk
  done

let priv_read_u64 t addr =
  let b = priv_read_bytes t addr 8 in
  let v = ref 0 in
  for i = 7 downto 0 do
    v := (!v lsl 8) lor Char.code (Bytes.get b i)
  done;
  !v

let priv_write_u64 t addr v =
  let b = Bytes.create 8 in
  for i = 0 to 7 do
    Bytes.set b i (Char.chr ((v lsr (8 * i)) land 0xFF))
  done;
  priv_write_bytes t addr b

let priv_read_string t addr len = Bytes.to_string (priv_read_bytes t addr len)

let charge t n = Cpu.charge t.cpu n

let cycles = total_cycles
