(** The signal-delivery model (SIGSEGV and SIGTRAP).

    Mirrors how the paper's profiler coexists with an application's own
    fault handlers: handlers are registered in order (Servo registers many,
    the profiler registers itself "as late as possible"); on a fault the
    most recently registered handler runs first and may pass the fault to
    the handler that preceded it, exactly like keeping a reference to a
    previously registered sigaction.

    A SIGSEGV handler returns what the kernel should do next:
    {ul
    {- [Retry]: return from the handler and re-execute the faulting access
       (the handler has typically fixed up PKRU and set the trap flag);}
    {- [Pass]: defer to the previously registered handler;}
    {- [Kill]: terminate the process with a message.}} *)

type segv_action =
  | Retry
  | Pass
  | Kill of string

type segv_handler = Vmm.Fault.t -> segv_action
type trap_handler = unit -> unit

exception Process_killed of string
(** The simulated process terminated abnormally (default SIGSEGV
    disposition, a handler returning [Kill], or a call-gate PKRU-value
    mismatch). *)

type t

val create : unit -> t

val register_segv : t -> segv_handler -> unit
(** Pushes a handler; it becomes the first to see subsequent faults. *)

val register_trap : t -> trap_handler -> unit
(** Installs the SIGTRAP handler (single handler; latest wins). *)

val segv_handler_count : t -> int

val unregister_segv : t -> bool
(** Pops the most recently registered SIGSEGV handler (the one that sees
    faults first).  Returns [false] when the chain is already empty.
    Models an application (or fault injector) restoring a previous
    sigaction without keeping the interposer in the chain. *)

val reorder_segv : t -> (segv_handler list -> segv_handler list) -> unit
(** Rewrites the handler chain (head = first to see faults).  Used by the
    chaos harness to model handler-registration races. *)

val last_fault : t -> (Vmm.Fault.t * int) option
(** The most recent fault delivered via {!deliver_segv}, if any, paired
    with the id of the hart it was delivered on (0 when the delivery did
    not name a hart) so concurrent-attack post-mortems attribute the
    fault to the right CPU. *)

val tamper_sigframe : t -> Mpk.Pkru.t option -> unit
(** Garmr attack model: scribble a forged PKRU over the saved-PKRU field
    of pending signal frames ([Some pkru]), or stop tampering ([None]).
    The signal frame lives on the (attacker-writable) user stack, so a
    compromised U can rewrite it between delivery and sigreturn; the
    forged value is installed on the delivering hart when a handler
    returns [Retry] — unless {!set_sigframe_scrub} is on. *)

val set_sigframe_scrub : t -> bool -> unit
(** Garmr defense: when on, sigreturn validates the saved PKRU against
    the frame written at delivery; a forged restore dumps the flight
    recorder and kills the process instead of installing the value.
    Off by default — the sigreturn path is a no-op for untampered
    frames either way, so the defense is architecturally invisible. *)

val sigframe_scrub : t -> bool
val sigreturn_forged : t -> int
(** Forged PKRU restores that took effect (scrubbing off). *)

val sigreturn_blocked : t -> int
(** Forged PKRU restores refused by the scrubber (scrubbing on). *)

val deliver_segv : t -> ?cpu:Cpu.t -> Vmm.Fault.t -> unit
(** Walks the handler chain.  Returns normally iff some handler said
    [Retry] (after which sigreturn reinstates the saved frame — see
    {!tamper_sigframe}).  [cpu] names the faulting hart for post-mortem
    attribution and is the target of any sigreturn PKRU restore.
    @raise Vmm.Fault.Unhandled when no handler resolves the fault
    @raise Process_killed when a handler demands termination *)

val deliver_trap : t -> unit
(** Invokes the SIGTRAP handler; a trap with no handler kills the process
    (default SIGTRAP disposition). *)
