(** The signal-delivery model (SIGSEGV and SIGTRAP).

    Mirrors how the paper's profiler coexists with an application's own
    fault handlers: handlers are registered in order (Servo registers many,
    the profiler registers itself "as late as possible"); on a fault the
    most recently registered handler runs first and may pass the fault to
    the handler that preceded it, exactly like keeping a reference to a
    previously registered sigaction.

    A SIGSEGV handler returns what the kernel should do next:
    {ul
    {- [Retry]: return from the handler and re-execute the faulting access
       (the handler has typically fixed up PKRU and set the trap flag);}
    {- [Pass]: defer to the previously registered handler;}
    {- [Kill]: terminate the process with a message.}} *)

type segv_action =
  | Retry
  | Pass
  | Kill of string

type segv_handler = Vmm.Fault.t -> segv_action
type trap_handler = unit -> unit

exception Process_killed of string
(** The simulated process terminated abnormally (default SIGSEGV
    disposition, a handler returning [Kill], or a call-gate PKRU-value
    mismatch). *)

type t

val create : unit -> t

val register_segv : t -> segv_handler -> unit
(** Pushes a handler; it becomes the first to see subsequent faults. *)

val register_trap : t -> trap_handler -> unit
(** Installs the SIGTRAP handler (single handler; latest wins). *)

val segv_handler_count : t -> int

val unregister_segv : t -> bool
(** Pops the most recently registered SIGSEGV handler (the one that sees
    faults first).  Returns [false] when the chain is already empty.
    Models an application (or fault injector) restoring a previous
    sigaction without keeping the interposer in the chain. *)

val reorder_segv : t -> (segv_handler list -> segv_handler list) -> unit
(** Rewrites the handler chain (head = first to see faults).  Used by the
    chaos harness to model handler-registration races. *)

val last_fault : t -> Vmm.Fault.t option
(** The most recent fault delivered via {!deliver_segv}, if any. *)

val deliver_segv : t -> Vmm.Fault.t -> unit
(** Walks the handler chain.  Returns normally iff some handler said
    [Retry].
    @raise Vmm.Fault.Unhandled when no handler resolves the fault
    @raise Process_killed when a handler demands termination *)

val deliver_trap : t -> unit
(** Invokes the SIGTRAP handler; a trap with no handler kills the process
    (default SIGTRAP disposition). *)
