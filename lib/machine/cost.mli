(** The cycle-cost model.

    All simulated time in the project is charged through these constants,
    so the benchmark harness and the ablation studies share a single source
    of truth.  Defaults are calibrated so that a round-trip call gate costs
    about 80 cycles against a ~10-cycle empty FFI call, reproducing the
    paper's micro-benchmark ratios (Empty 8.55x); see DESIGN.md §5.

    The software {!Tlb} deliberately has no entry here: it is a host-side
    optimisation of the simulator itself, architecturally invisible, and
    charges nothing — simulated cycle counts are identical with it on or
    off. *)

type t = {
  alu : int;             (** integer add/sub/logic *)
  mul : int;
  div : int;
  float_op : int;
  branch : int;
  load : int;            (** one cache-hit load *)
  store : int;
  call : int;            (** direct call *)
  ret : int;
  call_indirect : int;
  wrpkru : int;          (** PKRU write, serialising *)
  rdpkru : int;
  gate_bookkeeping : int; (** compartment-stack push/pop + PKRU verify, per gate side *)
  soft_page_fault : int; (** demand-paging a reserved page *)
  signal_dispatch : int; (** kernel SIGSEGV/SIGTRAP delivery + sigreturn *)
}

val default : t

val with_wrpkru : t -> int -> t
(** [with_wrpkru t n] is [t] with the WRPKRU cost replaced — used by the
    gate-cost-sweep ablation. *)
