(** The simulated machine: page table + CPU + signal chain, with the
    checked memory-access path.

    Every load and store made by simulated code goes through {!read_u8}
    .. {!write_u64} (or the block-copy helpers), which walk the page table,
    apply page protections and the MPK check against the current PKRU
    value, charge cycles, and deliver faults through the signal chain —
    re-executing the access when a handler returns [Retry] and honouring
    the trap flag for single-stepped profiling.

    A per-hart software {!Tlb} caches resolved pages with precomputed
    permission masks, so page-hot access sequences skip the page-table
    walk and PKRU decode.  The TLB is architecturally invisible (no
    cycles, no events — see {!Tlb}); faults, single-stepping and demand
    paging always take the slow path, so simulated cycle counts and
    telemetry traces are bit-identical whether it is on or off.

    The [priv_*] accessors bypass checks and charging.  They model two
    things that are outside the simulated instruction stream: the kernel /
    fault handler inspecting memory on the process's behalf, and test
    setup. *)

type t = {
  page_table : Vmm.Page_table.t;
  mutable cpu : Cpu.t; (** the hart currently executing *)
  mutable cpus_rev : Cpu.t list;
      (** every hart, most recently spawned first — use {!cpus} for
          boot-thread-first order *)
  mutable ncpus : int;
  signals : Signals.t;
  pkeys : Vmm.Pkeys.t; (** the kernel's pkey_alloc/pkey_free state *)
  retired : int ref;
      (** machine-wide retired-cycle accumulator, shared with every hart *)
  tlb_enabled : bool;
  mutable syscall_filter : Mpk.Pkey.t option;
      (** Garmr syscall filter: when [Some trusted_key], the [sys_*]
          kernel-interface entry points refuse pkey/page-table mutations
          issued from a hart resident in U.  [None] (default) is fully
          permissive. *)
}

val create : ?cost:Cost.t -> ?tlb:bool -> unit -> t
(** [tlb] (default [true]) enables the software TLB on every hart; pass
    [false] to force every access down the slow resolve path (used by the
    equivalence test and the TLB microbench baseline). *)

(* {2 Threads}

   Simulated threads are cooperative: {!spawn_cpu} registers a new hart
   with its own PKRU (fully enabled, like a fresh kernel thread) and
   {!run_on} switches which hart executes a block of code.  Memory, the
   page table and signal dispositions are process-wide; PKRU, the trap
   flag and cycle counts are per-hart, as on real hardware. *)

val spawn_cpu : t -> Cpu.t
(** Creates and registers a new hart (does not switch to it).  O(1). *)

val cpus : t -> Cpu.t list
(** Every hart, boot thread first. *)

val run_on : t -> Cpu.t -> (unit -> 'a) -> 'a
(** [run_on t cpu f] executes [f] with [cpu] as the current hart, restoring
    the previous hart afterwards (exception-safe). *)

val switch_to_cpu : t -> Cpu.t -> Cpu.t
(** Non-bracketed hart switch, returning the previously current hart.
    For effect-based schedulers whose slices cross [Effect.perform]
    boundaries (a [Fun.protect] bracket cannot): the caller restores the
    returned hart itself.  Emits the same thread-switch telemetry as
    {!run_on} (none when switching to the already-current hart) and
    charges no simulated cycles. *)

(* {2 Checked accesses (simulated instructions)} *)

val read_u8 : t -> int -> int
val read_u16 : t -> int -> int
val read_u32 : t -> int -> int
val read_u64 : t -> int -> int
val write_u8 : t -> int -> int -> unit
val write_u16 : t -> int -> int -> unit
val write_u32 : t -> int -> int -> unit
val write_u64 : t -> int -> int -> unit

val read_f64 : t -> int -> float
val write_f64 : t -> int -> float -> unit

val read_f64_batched : t -> int -> float
val write_f64_batched : t -> int -> float -> unit
(** Width-specialized slot access: one TLB probe covers both constituent
    fixed-width accesses of an in-page 8-byte slot, charging the same
    total cycles.  Bit-identical to {!read_f64}/{!write_f64} in cycles,
    faults and event traces (falls back to the split path on a TLB miss,
    a pending trap, a page-straddling slot, or a TLB-off machine); only
    TLB hit counts differ (one probe instead of two). *)

val read_bytes : t -> int -> int -> Bytes.t
(** [read_bytes t addr len]; charged one load per 8 bytes. *)

val write_bytes : t -> int -> Bytes.t -> unit
val write_string : t -> int -> string -> unit

val memset : t -> int -> char -> int -> unit
(** [memset t addr byte len]; charged one store per 8 bytes. *)

val probe : t -> Vmm.Fault.access -> int -> Vmm.Fault.kind option
(** [probe t access addr] performs the access check only — no data
    transfer, no cycle charge, no fault delivery.  [None] means the access
    would succeed. *)

(* {2 Privileged accesses (kernel / test harness)} *)

val priv_read_u64 : t -> int -> int
val priv_write_u64 : t -> int -> int -> unit
val priv_read_bytes : t -> int -> int -> Bytes.t
val priv_write_bytes : t -> int -> Bytes.t -> unit
val priv_read_string : t -> int -> int -> string

(* {2 Convenience} *)

val charge : t -> int -> unit
(** Charges straight-line compute cycles on the current hart. *)

val cycles : t -> int
(** Total cycles retired across every hart.  O(1): maintained as a
    running accumulator, not a fold over harts, so per-event telemetry
    timestamps don't scale with thread count. *)

(* {2 Kernel interface (Garmr syscall-confusion surface)}

   The [sys_*] entry points model the syscalls an in-process attacker can
   issue to remap or retag pkey-tagged memory out from under pkalloc.
   With the filter disarmed they forward byte-for-byte to the VMM;
   internal callers (pkalloc, test setup) keep calling [Vmm.Page_table] /
   [Vmm.Pkeys] directly, so arming the filter never changes benign runs.
   Kernel-side work charges no simulated user cycles. *)

val set_syscall_filter : t -> Mpk.Pkey.t option -> unit
(** Arms ([Some trusted_key]) or disarms ([None]) the Garmr syscall
    filter.  Armed, any [sys_*] mutation from a hart whose PKRU cannot
    read [trusted_key] — i.e. from U residency — returns
    [Error "EPERM: ..."], ticks [machine.syscall_refused] on the sink and
    dumps the flight recorder with the offending syscall and hart. *)

val syscall_filter : t -> Mpk.Pkey.t option

val sys_pkey_mprotect : t -> base:int -> size:int -> Mpk.Pkey.t -> (unit, string) result
(** pkey_mprotect(2): retag a mapped range.  Subject to the filter. *)

val sys_mprotect : t -> base:int -> size:int -> Vmm.Prot.t -> (unit, string) result
(** mprotect(2): change protection bits.  Subject to the filter. *)

val sys_pkey_alloc : t -> (Mpk.Pkey.t, string) result
(** pkey_alloc(2).  Subject to the filter. *)

val sys_pkey_free : t -> Mpk.Pkey.t -> (unit, string) result
(** pkey_free(2).  Subject to the filter. *)

(* {2 TLB observability} *)

val tlb_enabled : t -> bool

val tlb_stats : t -> Tlb.stats
(** Aggregate hit/miss/flush counts across every hart's TLB.  All zero
    when the machine was created with [~tlb:false]. *)
