type t = {
  id : int;
  cost : Cost.t;
  mutable pkru : Mpk.Pkru.t;
  mutable trap_flag : bool;
  mutable cycles : int;
  mutable wrpkru_retired : int;
  mutable pkru_epoch : int;
  retired_acc : int ref;
  tlb : Tlb.t;
}

let create ?(cost = Cost.default) ?(id = 0) ?retired () =
  let retired_acc = match retired with Some r -> r | None -> ref 0 in
  {
    id;
    cost;
    pkru = Mpk.Pkru.all_enabled;
    trap_flag = false;
    cycles = 0;
    wrpkru_retired = 0;
    pkru_epoch = 0;
    retired_acc;
    tlb = Tlb.create ();
  }

(* Every retired cycle flows through here, so this is where the sampling
   profiler and the heap census tick and where the machine-wide retired
   accumulator grows (keeping [Machine.total_cycles] O(1) instead of a
   fold over harts).  The ticks charge nothing back, so sampled/censused
   and plain runs retire identical cycle counts; disabled, the cost is
   one load and one branch each, same as the sink discipline. *)
let charge t n =
  t.cycles <- t.cycles + n;
  t.retired_acc := !(t.retired_acc) + n;
  (match !Telemetry.Sampler.current with
  | None -> ()
  | Some sampler -> Telemetry.Sampler.tick sampler n);
  match !Telemetry.Census.current with
  | None -> ()
  | Some census -> Telemetry.Census.tick census ~cpu:t.id n

(* All intentional PKRU updates come through here so the epoch advances
   and cached permission masks in the hart's TLB go stale.  (Direct
   [t.pkru <- ...] stores are still caught by the TLB's raw-value
   comparison; the epoch is the documented invalidation protocol.) *)
let set_pkru t v =
  t.pkru <- v;
  t.pkru_epoch <- t.pkru_epoch + 1

let wrpkru t v =
  charge t t.cost.Cost.wrpkru;
  t.wrpkru_retired <- t.wrpkru_retired + 1;
  set_pkru t v;
  match !Telemetry.Sink.current with
  | None -> ()
  | Some sink ->
    Telemetry.Sink.emit sink ~ts:t.cycles ~cpu:t.id
      (Telemetry.Event.Wrpkru { value = Mpk.Pkru.to_int v })

let rdpkru t =
  charge t t.cost.Cost.rdpkru;
  t.pkru

let cycles t = t.cycles

let reset_cycles t =
  t.retired_acc := !(t.retired_acc) - t.cycles;
  t.cycles <- 0
