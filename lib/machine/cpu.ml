type t = {
  id : int;
  cost : Cost.t;
  mutable pkru : Mpk.Pkru.t;
  mutable trap_flag : bool;
  mutable cycles : int;
  mutable wrpkru_retired : int;
}

let create ?(cost = Cost.default) ?(id = 0) () =
  { id; cost; pkru = Mpk.Pkru.all_enabled; trap_flag = false; cycles = 0; wrpkru_retired = 0 }

let charge t n = t.cycles <- t.cycles + n

let wrpkru t v =
  charge t t.cost.Cost.wrpkru;
  t.wrpkru_retired <- t.wrpkru_retired + 1;
  t.pkru <- v;
  match !Telemetry.Sink.current with
  | None -> ()
  | Some sink ->
    Telemetry.Sink.emit sink ~ts:t.cycles ~cpu:t.id
      (Telemetry.Event.Wrpkru { value = Mpk.Pkru.to_int v })

let rdpkru t =
  charge t t.cost.Cost.rdpkru;
  t.pkru

let cycles t = t.cycles

let reset_cycles t = t.cycles <- 0
