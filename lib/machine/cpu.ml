type t = {
  id : int;
  cost : Cost.t;
  mutable pkru : Mpk.Pkru.t;
  mutable trap_flag : bool;
  mutable cycles : int;
  mutable wrpkru_retired : int;
}

let create ?(cost = Cost.default) ?(id = 0) () =
  { id; cost; pkru = Mpk.Pkru.all_enabled; trap_flag = false; cycles = 0; wrpkru_retired = 0 }

(* Every retired cycle flows through here, so this is where the sampling
   profiler ticks.  The tick charges nothing back, so sampled and
   unsampled runs retire identical cycle counts; disabled, the cost is
   one load and one branch, same as the sink discipline. *)
let charge t n =
  t.cycles <- t.cycles + n;
  match !Telemetry.Sampler.current with
  | None -> ()
  | Some sampler -> Telemetry.Sampler.tick sampler n

let wrpkru t v =
  charge t t.cost.Cost.wrpkru;
  t.wrpkru_retired <- t.wrpkru_retired + 1;
  t.pkru <- v;
  match !Telemetry.Sink.current with
  | None -> ()
  | Some sink ->
    Telemetry.Sink.emit sink ~ts:t.cycles ~cpu:t.id
      (Telemetry.Event.Wrpkru { value = Mpk.Pkru.to_int v })

let rdpkru t =
  charge t t.cost.Cost.rdpkru;
  t.pkru

let cycles t = t.cycles

let reset_cycles t = t.cycles <- 0
