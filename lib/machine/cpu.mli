(** Per-hart execution state: PKRU register, trap flag (single-stepping)
    and the retired-cycle counter.

    PKRU lives in a register, never in attacker-writable memory, matching
    the threat model's assumption that adversaries cannot manipulate it
    directly. *)

type t = {
  id : int; (** hart id; 0 is the boot thread *)
  cost : Cost.t;
  mutable pkru : Mpk.Pkru.t;
  mutable trap_flag : bool;
  mutable cycles : int;
  mutable wrpkru_retired : int;
  mutable pkru_epoch : int;
      (** bumped by every PKRU write through {!set_pkru} / {!wrpkru};
          part of the software TLB's invalidation protocol *)
  retired_acc : int ref;
      (** machine-wide retired-cycle accumulator shared by all harts of
          one {!Machine}, kept current by {!charge} / {!reset_cycles} *)
  tlb : Tlb.t;  (** this hart's software TLB (architecturally invisible) *)
}

val create : ?cost:Cost.t -> ?id:int -> ?retired:int ref -> unit -> t
(** Fresh CPU with PKRU fully enabled (kernel default for a new thread).
    [retired] shares the machine-wide cycle accumulator; a fresh ref is
    used when absent (standalone CPUs in tests). *)

val charge : t -> int -> unit
(** [charge cpu n] retires [n] cycles of straight-line work, grows the
    shared accumulator and ticks the installed {!Telemetry.Sampler}
    (which charges nothing back, keeping sampled and unsampled cycle
    counts identical). *)

val set_pkru : t -> Mpk.Pkru.t -> unit
(** Replaces the register and bumps {!field-pkru_epoch}, staling every
    cached permission mask in this hart's TLB.  Charges nothing — use
    {!wrpkru} to model the instruction.  All intentional PKRU updates
    (gates, signal-handler swaps) must come through here or {!wrpkru}. *)

val wrpkru : t -> Mpk.Pkru.t -> unit
(** Executes WRPKRU: charges its cost and replaces the register (through
    {!set_pkru}, so the PKRU epoch advances). *)

val rdpkru : t -> Mpk.Pkru.t
(** Executes RDPKRU: charges its cost and reads the register. *)

val cycles : t -> int
(** Total cycles retired so far. *)

val reset_cycles : t -> unit
(** Zeroes the counter, deducting the same amount from the shared
    accumulator (used between benchmark phases). *)
