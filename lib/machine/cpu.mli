(** Per-hart execution state: PKRU register, trap flag (single-stepping)
    and the retired-cycle counter.

    PKRU lives in a register, never in attacker-writable memory, matching
    the threat model's assumption that adversaries cannot manipulate it
    directly. *)

type t = {
  id : int; (** hart id; 0 is the boot thread *)
  cost : Cost.t;
  mutable pkru : Mpk.Pkru.t;
  mutable trap_flag : bool;
  mutable cycles : int;
  mutable wrpkru_retired : int;
}

val create : ?cost:Cost.t -> ?id:int -> unit -> t
(** Fresh CPU with PKRU fully enabled (kernel default for a new thread). *)

val charge : t -> int -> unit
(** [charge cpu n] retires [n] cycles of straight-line work and ticks the
    installed {!Telemetry.Sampler} (which charges nothing back, keeping
    sampled and unsampled cycle counts identical). *)

val wrpkru : t -> Mpk.Pkru.t -> unit
(** Executes WRPKRU: charges its cost and replaces the register. *)

val rdpkru : t -> Mpk.Pkru.t
(** Executes RDPKRU: charges its cost and reads the register. *)

val cycles : t -> int
(** Total cycles retired so far. *)

val reset_cycles : t -> unit
(** Zeroes the counter (used between benchmark phases). *)
