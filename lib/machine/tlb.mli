(** A per-hart, direct-mapped software TLB for the simulated memory path.

    Caches [page number -> (page, permission mask)] so the common case of
    {!Machine}'s checked accesses — same few pages, unchanged PKRU — skips
    the page-table Hashtbl, the region walk and the PKRU decode entirely.
    Modelled on QEMU's softmmu TLB; the invalidation discipline (precise
    invalidation on every PKRU-affecting transition) follows Garmr's
    argument for why cached PKU checks must be revalidated.

    Entries are validated against three things on every lookup:
    {ul
    {- the page table's {e mapping epoch} (bumped by reserve / map_now /
       mprotect / pkey_mprotect — see {!Vmm.Page_table.epoch});}
    {- the hart's {e PKRU epoch} (bumped by every write through
       {!Cpu.set_pkru} / {!Cpu.wrpkru});}
    {- the raw PKRU value the mask was computed under, which also catches
       direct [cpu.pkru <- ...] stores that bypass the setter.}}

    The TLB is architecturally invisible: lookups and fills charge no
    cycles and emit no telemetry events, so cycle counts, fault sequences
    and event traces are bit-identical with the TLB on or off. *)

type t

val size : int
(** Number of direct-mapped entries (256). *)

val create : unit -> t
(** An empty TLB (every entry invalid). *)

(* {2 Access-kind bits}

   The permission mask ORs these; a lookup hits only when the entry's mask
   includes the requested bit. *)

val read_bit : int
val write_bit : int
val execute_bit : int

val access_bit : Vmm.Fault.access -> int

(* {2 The fast path} *)

val lookup :
  t ->
  map_epoch:int ->
  pkru_epoch:int ->
  pkru:Mpk.Pkru.t ->
  access_bit:int ->
  int ->
  bool
(** [lookup t ~map_epoch ~pkru_epoch ~pkru ~access_bit page_number] is
    [true] when the entry for [page_number] is present, current under both
    epochs and the PKRU value, and permits the access.  The page is then
    {!cached_page}.  Counts one hit or miss, and one flush generation per
    epoch change first observed. *)

val cached_page : t -> int -> Vmm.Page.t
(** The page cached in [page_number]'s slot — only meaningful immediately
    after a [lookup] that returned [true] for the same page number. *)

val fill : t -> map_epoch:int -> pkru_epoch:int -> pkru:Mpk.Pkru.t -> int -> Vmm.Page.t -> unit
(** Installs the slow path's resolved page, precomputing the permission
    mask from the page's protection, its key and [pkru]. *)

val flush : t -> unit
(** Invalidates every entry (counted as one flush). *)

(* {2 Statistics} *)

type stats = {
  hits : int;
  misses : int;
  flushes : int; (** invalidation generations observed + explicit flushes *)
}

val stats : t -> stats
val add_stats : stats -> stats -> stats
val zero_stats : stats

val hit_rate : stats -> float
(** [hits / (hits + misses)], 0 when no lookups were made. *)
