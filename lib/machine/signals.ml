type segv_action =
  | Retry
  | Pass
  | Kill of string

type segv_handler = Vmm.Fault.t -> segv_action
type trap_handler = unit -> unit

exception Process_killed of string

type t = {
  mutable segv_chain : segv_handler list; (* head = most recently registered *)
  mutable trap : trap_handler option;
}

let create () = { segv_chain = []; trap = None }

let register_segv t handler = t.segv_chain <- handler :: t.segv_chain

let register_trap t handler = t.trap <- Some handler

let segv_handler_count t = List.length t.segv_chain

let note delivery =
  match !Telemetry.Sink.current with
  | None -> ()
  | Some sink -> Telemetry.Sink.incr sink delivery

let deliver_segv t fault =
  note "signals.segv_delivered";
  let rec walk = function
    | [] ->
      note "signals.unhandled";
      raise (Vmm.Fault.Unhandled fault)
    | handler :: rest ->
      (match handler fault with
      | Retry -> ()
      | Pass -> walk rest
      | Kill msg ->
        note "signals.killed";
        raise (Process_killed msg))
  in
  walk t.segv_chain

let deliver_trap t =
  note "signals.trap_delivered";
  match t.trap with
  | Some handler -> handler ()
  | None -> raise (Process_killed "SIGTRAP with no handler installed")

let () =
  Printexc.register_printer (function
    | Process_killed msg -> Some ("Signals.Process_killed: " ^ msg)
    | _ -> None)
