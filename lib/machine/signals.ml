type segv_action =
  | Retry
  | Pass
  | Kill of string

type segv_handler = Vmm.Fault.t -> segv_action
type trap_handler = unit -> unit

exception Process_killed of string

type t = {
  mutable segv_chain : segv_handler list; (* head = most recently registered *)
  mutable trap : trap_handler option;
  mutable last_fault : Vmm.Fault.t option; (* most recent SIGSEGV delivered *)
}

let create () = { segv_chain = []; trap = None; last_fault = None }

let register_segv t handler = t.segv_chain <- handler :: t.segv_chain

let register_trap t handler = t.trap <- Some handler

let segv_handler_count t = List.length t.segv_chain

let unregister_segv t =
  match t.segv_chain with
  | [] -> false
  | _ :: rest ->
    t.segv_chain <- rest;
    true

let reorder_segv t f = t.segv_chain <- f t.segv_chain

let last_fault t = t.last_fault

let note delivery =
  match !Telemetry.Sink.current with
  | None -> ()
  | Some sink -> Telemetry.Sink.incr sink delivery

(* Death paths hand the flight recorder a post-mortem before raising.
   The dump is a no-op when no recorder is armed and touches neither the
   sink's counters nor simulated cycles, so enforcement runs stay
   bit-identical. *)
let fault_details fault =
  [
    ("fault", Util.Json.String (Vmm.Fault.to_string fault));
    ("addr", Util.Json.Int fault.Vmm.Fault.addr);
  ]

let deliver_segv t fault =
  t.last_fault <- Some fault;
  note "signals.segv_delivered";
  let rec walk = function
    | [] ->
      note "signals.unhandled";
      Telemetry.Flight.dump ~reason:"unhandled SIGSEGV" ~details:(fault_details fault) ();
      raise (Vmm.Fault.Unhandled fault)
    | handler :: rest ->
      (match handler fault with
      | Retry -> ()
      | Pass -> walk rest
      | Kill msg ->
        note "signals.killed";
        Telemetry.Flight.dump ~reason:"SIGSEGV handler killed the process"
          ~details:(("message", Util.Json.String msg) :: fault_details fault)
          ();
        raise (Process_killed msg))
  in
  walk t.segv_chain

let deliver_trap t =
  note "signals.trap_delivered";
  match t.trap with
  | Some handler -> handler ()
  | None ->
    (* A trap with no handler is fatal; the message carries enough context
       (how deep the SIGSEGV chain was, and which fault set the trap flag)
       to diagnose which interposer armed single-stepping and then lost
       its trap handler. *)
    let last =
      match t.last_fault with
      | Some fault -> Vmm.Fault.to_string fault
      | None -> "none"
    in
    Telemetry.Flight.dump ~reason:"SIGTRAP with no handler installed"
      ~details:
        [
          ("segv_chain_depth", Util.Json.Int (List.length t.segv_chain));
          ("last_fault", Util.Json.String last);
        ]
      ();
    raise
      (Process_killed
         (Printf.sprintf
            "SIGTRAP with no handler installed (segv handler chain depth %d, last fault: %s)"
            (List.length t.segv_chain) last))

let () =
  Printexc.register_printer (function
    | Process_killed msg -> Some ("Signals.Process_killed: " ^ msg)
    | _ -> None)
