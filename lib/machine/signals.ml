type segv_action =
  | Retry
  | Pass
  | Kill of string

type segv_handler = Vmm.Fault.t -> segv_action
type trap_handler = unit -> unit

exception Process_killed of string

type t = {
  mutable segv_chain : segv_handler list; (* head = most recently registered *)
  mutable trap : trap_handler option;
  mutable last_fault : (Vmm.Fault.t * int) option;
      (* most recent SIGSEGV delivered, with the hart it was delivered on *)
  (* Signal-frame model (Garmr).  On delivery the kernel saves the
     interrupted context — including PKRU — in a frame on the user stack,
     and sigreturn restores it.  The frame is writable by the interrupted
     (possibly untrusted) code, so an attacker can scribble a permissive
     PKRU over the saved field and have "the kernel" install it on
     handler return.  [sigframe_tamper] models that scribble;
     [scrub_sigframes] is the defense: the kernel scrubs/validates the
     PKRU field and refuses a forged restore.  Both default off, so the
     sigreturn path is a no-op in ordinary runs. *)
  mutable sigframe_tamper : Mpk.Pkru.t option;
  mutable scrub_sigframes : bool;
  mutable sigreturn_forged : int; (* forged restores that took effect *)
  mutable sigreturn_blocked : int; (* forged restores refused by the scrubber *)
}

let create () =
  {
    segv_chain = [];
    trap = None;
    last_fault = None;
    sigframe_tamper = None;
    scrub_sigframes = false;
    sigreturn_forged = 0;
    sigreturn_blocked = 0;
  }

let register_segv t handler = t.segv_chain <- handler :: t.segv_chain

let register_trap t handler = t.trap <- Some handler

let segv_handler_count t = List.length t.segv_chain

let unregister_segv t =
  match t.segv_chain with
  | [] -> false
  | _ :: rest ->
    t.segv_chain <- rest;
    true

let reorder_segv t f = t.segv_chain <- f t.segv_chain

let last_fault t = t.last_fault

let tamper_sigframe t forged = t.sigframe_tamper <- forged
let set_sigframe_scrub t on = t.scrub_sigframes <- on
let sigframe_scrub t = t.scrub_sigframes
let sigreturn_forged t = t.sigreturn_forged
let sigreturn_blocked t = t.sigreturn_blocked

let note delivery =
  match !Telemetry.Sink.current with
  | None -> ()
  | Some sink -> Telemetry.Sink.incr sink delivery

(* Death paths hand the flight recorder a post-mortem before raising.
   The dump is a no-op when no recorder is armed and touches neither the
   sink's counters nor simulated cycles, so enforcement runs stay
   bit-identical. *)
let fault_details ?cpu fault =
  [
    ("fault", Util.Json.String (Vmm.Fault.to_string fault));
    ("addr", Util.Json.Int fault.Vmm.Fault.addr);
  ]
  @ (match cpu with None -> [] | Some (c : Cpu.t) -> [ ("hart", Util.Json.Int c.Cpu.id) ])

let hart_id = function
  | Some (c : Cpu.t) -> c.Cpu.id
  | None -> 0

(* Handler return = sigreturn(2): the kernel reinstates the saved frame.
   Untampered frames restore exactly the context the handler chain left
   behind (handlers edit the frame in place, as the paper's profiler
   does), so nothing happens here.  A tampered frame either installs the
   forged PKRU on the delivering hart (no scrubbing — the Garmr attack)
   or is refused fail-stop (scrubbing on — the Garmr defense). *)
let sigreturn t cpu fault =
  match t.sigframe_tamper with
  | None -> ()
  | Some forged ->
    if t.scrub_sigframes then begin
      t.sigreturn_blocked <- t.sigreturn_blocked + 1;
      note "signals.sigreturn_blocked";
      Telemetry.Flight.dump ~reason:"sigreturn PKRU forgery blocked (scrubbed signal frame)"
        ~details:
          (("forged_pkru", Util.Json.Int (Mpk.Pkru.to_int forged)) :: fault_details ?cpu fault)
        ();
      raise
        (Process_killed
           (Printf.sprintf "sigreturn: forged PKRU 0x%08x in signal frame (hart %d)"
              (Mpk.Pkru.to_int forged) (hart_id cpu)))
    end
    else begin
      t.sigreturn_forged <- t.sigreturn_forged + 1;
      note "signals.sigreturn_forged";
      match cpu with
      | Some c -> Cpu.set_pkru c forged
      | None -> ()
    end

let deliver_segv t ?cpu fault =
  t.last_fault <- Some (fault, hart_id cpu);
  note "signals.segv_delivered";
  let rec walk = function
    | [] ->
      note "signals.unhandled";
      Telemetry.Flight.dump ~reason:"unhandled SIGSEGV" ~details:(fault_details ?cpu fault) ();
      raise (Vmm.Fault.Unhandled fault)
    | handler :: rest ->
      (match handler fault with
      | Retry -> sigreturn t cpu fault
      | Pass -> walk rest
      | Kill msg ->
        note "signals.killed";
        Telemetry.Flight.dump ~reason:"SIGSEGV handler killed the process"
          ~details:(("message", Util.Json.String msg) :: fault_details ?cpu fault)
          ();
        raise (Process_killed msg))
  in
  walk t.segv_chain

let deliver_trap t =
  note "signals.trap_delivered";
  match t.trap with
  | Some handler -> handler ()
  | None ->
    (* A trap with no handler is fatal; the message carries enough context
       (how deep the SIGSEGV chain was, and which fault set the trap flag
       on which hart) to diagnose which interposer armed single-stepping
       and then lost its trap handler. *)
    let last =
      match t.last_fault with
      | Some (fault, hart) -> Printf.sprintf "%s (hart %d)" (Vmm.Fault.to_string fault) hart
      | None -> "none"
    in
    Telemetry.Flight.dump ~reason:"SIGTRAP with no handler installed"
      ~details:
        [
          ("segv_chain_depth", Util.Json.Int (List.length t.segv_chain));
          ("last_fault", Util.Json.String last);
        ]
      ();
    raise
      (Process_killed
         (Printf.sprintf
            "SIGTRAP with no handler installed (segv handler chain depth %d, last fault: %s)"
            (List.length t.segv_chain) last))

let () =
  Printexc.register_printer (function
    | Process_killed msg -> Some ("Signals.Process_killed: " ^ msg)
    | _ -> None)
