(** Multi-session fleet: per-CPU run queues and cooperative scheduling.

    Runs N concurrent browsing sessions — each a complete vertical slice
    with its own {!Pkru_safe.Env}, browser and engine — multiplexed over
    per-CPU run queues by a deterministic host-sequential scheduler.
    Sessions yield cooperatively at evaluator tick boundaries (an effect
    performed by a budget-counting hook that charges no simulated cycles
    and emits nothing, so a single-session fleet run is bit-identical to
    {!Workloads.Runner}); empty CPUs admit pending sessions or steal the
    back half of the longest queue.  With [page_budget] set, every
    session's pools draw on one shared {!Allocators.Backing} budget and
    exhaustion retires the victim session with an [Oom] outcome.

    Determinism: per-session cycles, transitions and checksums are
    structurally independent of scheduling (each session owns its
    machine), so they are identical for any CPU count.  The makespan and
    latency figures depend on [cpus]/[timeslice] but are reproducible
    for fixed parameters.  Caveat: with a shared [page_budget], sessions
    couple through allocation order, so cross-CPU-count identity is only
    guaranteed with [page_budget = None]. *)

type job = {
  job_name : string;
  job_page : string;  (** HTML loaded before the scripts run (untimed) *)
  job_scripts : string list;  (** the timed workload *)
  job_seed : int;  (** engine Math.random seed *)
}

val job_of_bench : Workloads.Bench_def.bench -> job
val job_of_session : Workloads.Browsing.session -> job

type outcome =
  | Completed
  | Oom  (** the shared page budget (or the session's pools) ran dry *)
  | Failed of string

val outcome_to_string : outcome -> string

type session_result = {
  sr_index : int;  (** admission index, 0-based *)
  sr_name : string;  (** job name suffixed with the session index *)
  sr_cpu : int;  (** CPU the session retired on (after any steals) *)
  sr_cycles : int;  (** simulated cycles of the timed phase *)
  sr_transitions : int;  (** compartment transitions of the timed phase *)
  sr_checksum : int;  (** hash of console output, cycles, transitions *)
  sr_latency_cycles : int;  (** admission-to-retire, in cycles (= ns) *)
  sr_outcome : outcome;
}

type backing_stats = {
  bk_total_pages : int;
  bk_min_available : int;  (** budget low-water mark *)
  bk_denials : int;  (** page requests refused *)
}

type result = {
  r_sessions : int;
  r_cpus : int;
  r_timeslice : int;
  r_makespan_cycles : int;  (** max per-CPU virtual clock *)
  r_sessions_per_sec : float;  (** N * 1e9 / makespan (1 cycle = 1 ns) *)
  r_p50_latency_ns : float;
  r_p99_latency_ns : float;
  r_total_cycles : int;  (** sum of per-session timed cycles *)
  r_yields : int;  (** cooperative preemptions *)
  r_steals : int;  (** sessions migrated between CPUs *)
  r_completed : int;
  r_oom : int;
  r_failed : int;
  r_results : session_result list;  (** admission order *)
  r_trace : Telemetry.Sink.t option;  (** telemetry mode only *)
  r_backing : backing_stats option;  (** page-budget mode only *)
}

val run :
  ?mode:Pkru_safe.Config.mode ->
  ?profile:Runtime.Profile.t ->
  ?cpus:int ->
  ?timeslice:int ->
  ?max_live:int ->
  ?page_budget:int ->
  ?tier:Engine.tier ->
  ?telemetry:bool ->
  ?defenses:Pkru_safe.Config.defenses ->
  sessions:int ->
  job list ->
  result
(** [run ~sessions:n jobs] admits [n] sessions cycling round-robin over
    [jobs].  [timeslice] is the yield budget in evaluator ticks (default
    4000); [max_live] bounds concurrently-materialised sessions and
    therefore host memory (default 128); [page_budget] puts all sessions
    on a shared backing-page budget.

    [defenses] (default {!Pkru_safe.Config.no_defenses}) propagates the
    Garmr hardened-gate policies into every session's config; with
    [gate_reverify] on, each continuation restore re-checks the
    session's live PKRU against its gate's resident view and retires the
    session [Failed] fail-stop on a mismatch (the slice never runs).
    The check charges no cycles and emits nothing when it passes, so a
    defended benign fleet is bit-identical to an undefended one.

    [telemetry] (single-session, single-CPU only) captures an event
    trace with the exact {!Workloads.Runner} protocol — sink around the
    script phase, identical post-run counter injection order — so the
    trace is comparable bit-for-bit with the runner's; it is returned in
    [r_trace].

    The whole run holds {!Telemetry.Guard}: installing a process-wide
    telemetry writer mid-run raises, and a writer already installed
    makes [run] itself raise [Invalid_argument].

    @raise Invalid_argument on nonsensical parameters or an installed
    telemetry writer. *)

(** {2 Attack-program scheduling (the Garmr battery)}

    Unlike {!run}'s structurally independent sessions, [run_programs]
    multiplexes raw programs over {e one shared environment} — same
    machine, page table and signal dispositions, sibling harts — which
    is exactly the setting the Garmr attack classes need.  Each program
    runs on its own simulated thread and parks itself via the explicit
    [yield] callback (legal anywhere, including mid-gate while resident
    in U).  Scheduling is deterministic: the runnable program whose hart
    has retired the fewest simulated cycles runs next (program order
    breaks ties). *)

type program = {
  p_name : string;  (** names the program in re-verification flight dumps *)
  p_body : yield:(unit -> unit) -> unit;
}

type program_result = {
  pr_name : string;
  pr_hart : int;  (** the hart id this program's thread ran on *)
  pr_outcome : outcome;
  pr_cycles : int;  (** cycles the program's hart retired *)
  pr_yields : int;
  pr_resumes : int;
}

type battery = {
  b_programs : program_result list;  (** program order *)
  b_makespan_cycles : int;
  b_yields : int;
  b_resume_checks : int;
      (** gate re-verifications performed on resume (0 unless the
          environment's config enables [gate_reverify]) *)
  b_resume_kills : int;  (** resumes refused fail-stop by re-verification *)
}

val run_programs : Pkru_safe.Env.t -> program list -> battery
(** Runs the programs to completion over [env].  Spawns one fresh
    simulated thread per program; honours the environment's
    [gate_reverify] defense on every resume (a mismatch drops the
    continuation — the program retires [Failed] without executing
    another instruction).  Holds {!Telemetry.Guard} for the run; arm
    sinks/recorders {e before} calling.
    @raise Invalid_argument on an empty program list *)

val metrics : result -> Telemetry.Metrics.t
(** Fleet headline metrics (sessions/sec, p50/p99 latency, yields,
    steals, per-outcome session counts, backing budget stats) as a
    metrics registry for [expose]/[to_json]. *)

val to_json : ?per_session:bool -> result -> Util.Json.t
(** Bench/CLI artifact.  [per_session] appends the full per-session
    table (name, cpu, cycles, checksum, latency, outcome). *)
