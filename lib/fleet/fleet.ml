(* The multi-session fleet: a cooperative multi-CPU scheduler that runs N
   concurrent browsing sessions over the simulated machine.

   Each session is a complete vertical slice — its own [Pkru_safe.Env]
   (machine, gates, pkalloc), its own browser and engine — so sessions
   are structurally independent: per-session simulated cycles,
   transitions and traces cannot depend on how sessions interleave.  The
   scheduler multiplexes them over per-CPU run queues:

   - {b Yield points}: each session's evaluator gets a budget-counting
     yield hook ({!Eval.set_yield_hook}, called from [tick] on every
     execution tier).  When the budget runs out the hook performs the
     {!Yield} effect; the scheduler's handler captures the one-shot
     continuation and parks the session.  The hook charges no simulated
     cycles and emits nothing, so a fleet run of one session is
     bit-identical to the plain [Runner] path (asserted by test and
     bench).

   - {b Run queues}: one FIFO per scheduler CPU, each with a virtual
     clock advanced by the simulated cycles its sessions retire (1 cycle
     = 1 ns, as everywhere in the repo).  The host-sequential loop
     always serves the CPU with the smallest clock — a deterministic
     discrete-event simulation of parallel harts, so results are
     reproducible for any CPU count.

   - {b Work stealing}: a CPU with an empty queue first admits pending
     sessions (bounded by [max_live], which also bounds host memory at
     N=100k), then steals the back half of the longest queue.

   - {b Memory contention}: with [page_budget] set, every session's
     pools draw from one shared {!Allocators.Backing} budget; exhaustion
     surfaces as [Out_of_memory] in the victim session, which retires
     with an [Oom] outcome while the fleet keeps going.  Retired
     sessions return their pages.

   The only process-wide mutable the engine touches mid-run is
   [Value.batched_slots] (the threaded tier toggles it for a run's
   duration); the scheduler context-switches it per slice, so each
   session observes its own consistent value.  The telemetry writer slots
   are guarded ({!Telemetry.Guard}) for the whole run. *)

type job = {
  job_name : string;
  job_page : string;
  job_scripts : string list;
  job_seed : int;
}

let job_of_bench (b : Workloads.Bench_def.bench) =
  {
    job_name = b.Workloads.Bench_def.name;
    job_page = b.Workloads.Bench_def.page;
    job_scripts = [ b.Workloads.Bench_def.script ];
    job_seed = b.Workloads.Bench_def.engine_seed;
  }

let job_of_session (s : Workloads.Browsing.session) =
  {
    job_name = s.Workloads.Browsing.session_name;
    job_page = s.Workloads.Browsing.page;
    job_scripts = s.Workloads.Browsing.scripts;
    job_seed = 1;
  }

type outcome =
  | Completed
  | Oom
  | Failed of string

let outcome_to_string = function
  | Completed -> "completed"
  | Oom -> "oom"
  | Failed msg -> "failed: " ^ msg

type session_result = {
  sr_index : int;
  sr_name : string;
  sr_cpu : int;
  sr_cycles : int;
  sr_transitions : int;
  sr_checksum : int;
  sr_latency_cycles : int;
  sr_outcome : outcome;
}

type backing_stats = {
  bk_total_pages : int;
  bk_min_available : int;
  bk_denials : int;
}

type result = {
  r_sessions : int;
  r_cpus : int;
  r_timeslice : int;
  r_makespan_cycles : int;
  r_sessions_per_sec : float;
  r_p50_latency_ns : float;
  r_p99_latency_ns : float;
  r_total_cycles : int;
  r_yields : int;
  r_steals : int;
  r_completed : int;
  r_oom : int;
  r_failed : int;
  r_results : session_result list;
  r_trace : Telemetry.Sink.t option;
  r_backing : backing_stats option;
}

(* --- Cooperative scheduling over effects --- *)

type _ Effect.t += Yield : unit Effect.t

type step =
  | Done of outcome
  | Parked of (unit, step) Effect.Deep.continuation

type session = {
  s_id : int;
  s_job : job;
  mutable s_cpu : int;
  s_admitted_at : int; (* admitting CPU's vclock, in cycles *)
  mutable s_env : Pkru_safe.Env.t option; (* set by the body's first slice *)
  mutable s_browser : Browser.t option;
  mutable s_cont : (unit, step) Effect.Deep.continuation option;
  mutable s_last_cycles : int; (* machine cycles at the last slice boundary *)
  mutable s_batched : bool; (* saved [Value.batched_slots] across parks *)
}

let handler =
  {
    Effect.Deep.retc = (fun () -> Done Completed);
    exnc =
      (fun e ->
        match e with
        | Out_of_memory -> Done Oom
        | Effect.Unhandled _ as e -> raise e
        | e -> Done (Failed (Printexc.to_string e)));
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Yield ->
          Some (fun (k : (a, step) Effect.Deep.continuation) -> Parked k)
        | _ -> None);
  }

let checksum ~output ~cycles ~transitions =
  let h = List.fold_left (fun acc line -> Hashtbl.hash (acc, line)) 0 output in
  Hashtbl.hash (h, cycles, transitions)

(* The session body.  Mirrors the [Runner.run_config] measurement
   protocol exactly: environment/browser construction and page load are
   setup, counters reset, then the scripts are the timed run.  In
   [telemetry] mode (single-session only) the script phase runs under a
   sink and the same post-run counter injections as the runner, so the
   event trace is comparable bit-for-bit. *)
let session_body ~mode ~profile ~backing ~tier ~timeslice ~sink ~defenses sess () =
  let env =
    match Pkru_safe.Env.create ~profile ?backing (Pkru_safe.Config.make ~defenses mode) with
    | Ok env -> env
    | Error msg -> failwith ("Fleet: Env.create: " ^ msg)
  in
  sess.s_env <- Some env;
  let browser = Browser.create ~engine_seed:sess.s_job.job_seed env in
  sess.s_browser <- Some browser;
  let budget = ref timeslice in
  Engine.Eval.set_yield_hook
    (Engine.evaluator (Browser.engine browser))
    (Some
       (fun () ->
         decr budget;
         if !budget <= 0 then begin
           budget := timeslice;
           Effect.perform Yield
         end));
  Browser.load_page browser sess.s_job.job_page;
  Pkru_safe.Env.reset_counters env;
  Engine.reset_stats (Browser.engine browser);
  Browser.reset_selector_stats browser;
  let exec () =
    List.iter
      (fun script -> ignore (Browser.exec_script ?tier browser script))
      sess.s_job.job_scripts
  in
  match sink with
  | None -> exec ()
  | Some sink ->
    let machine = Pkru_safe.Env.machine env in
    let before = Sim.Machine.tlb_stats machine in
    (* Install directly: the fleet holds the telemetry guard, which
       blocks [with_sink] for outside writers but not the fleet's own
       single-session trace. *)
    let previous = !Telemetry.Sink.current in
    Telemetry.Sink.current := Some sink;
    Fun.protect ~finally:(fun () -> Telemetry.Sink.current := previous) exec;
    let after = Sim.Machine.tlb_stats machine in
    Telemetry.Sink.incr sink ~by:(after.Sim.Tlb.hits - before.Sim.Tlb.hits) "tlb_hit";
    Telemetry.Sink.incr sink ~by:(after.Sim.Tlb.misses - before.Sim.Tlb.misses) "tlb_miss";
    Telemetry.Sink.incr sink ~by:(after.Sim.Tlb.flushes - before.Sim.Tlb.flushes) "tlb_flush";
    let ic = Engine.Eval.ic_stats (Engine.evaluator (Browser.engine browser)) in
    let ts = Engine.threaded_stats (Browser.engine browser) in
    Telemetry.Sink.incr sink ~by:ic.Engine.Eval.var_hits "engine_var_ic_hit";
    Telemetry.Sink.incr sink ~by:ic.Engine.Eval.var_misses "engine_var_ic_miss";
    Telemetry.Sink.incr sink ~by:ts.Engine.Threaded.prop_hits "engine_prop_ic_hit";
    Telemetry.Sink.incr sink ~by:ts.Engine.Threaded.prop_misses "engine_prop_ic_miss";
    Telemetry.Sink.incr sink ~by:ts.Engine.Threaded.super_execs "engine_super_exec";
    let sel = Browser.selector_stats browser in
    Telemetry.Sink.incr sink ~by:sel.Browser.sel_hits "engine_selector_hit";
    Telemetry.Sink.incr sink ~by:sel.Browser.sel_misses "engine_selector_miss"

(* --- The scheduler --- *)

let run ?(mode = Pkru_safe.Config.Base) ?profile ?(cpus = 1) ?(timeslice = 4000)
    ?(max_live = 128) ?page_budget ?tier ?(telemetry = false)
    ?(defenses = Pkru_safe.Config.no_defenses) ~sessions:n jobs =
  if n <= 0 then invalid_arg "Fleet.run: sessions must be positive";
  if cpus <= 0 then invalid_arg "Fleet.run: cpus must be positive";
  if timeslice <= 0 then invalid_arg "Fleet.run: timeslice must be positive";
  if max_live <= 0 then invalid_arg "Fleet.run: max_live must be positive";
  if jobs = [] then invalid_arg "Fleet.run: no jobs";
  if telemetry && (n <> 1 || cpus <> 1) then
    invalid_arg "Fleet.run: telemetry traces are single-session only (sessions=1, cpus=1)";
  (* A writer installed before the fleet starts would observe an
     arbitrary interleaving of all sessions — refuse, like the guard
     refuses installs while the fleet is active. *)
  if Telemetry.Sink.active () then
    invalid_arg "Fleet.run: a process-wide sink is installed; disable it before a fleet run";
  if Telemetry.Sampler.active () then
    invalid_arg "Fleet.run: a sampler is installed; disable it before a fleet run";
  if Telemetry.Census.active () then
    invalid_arg "Fleet.run: a census is installed; disable it before a fleet run";
  if !Telemetry.Flight.current <> None then
    invalid_arg "Fleet.run: the flight recorder is armed; disarm it before a fleet run";
  let profile = match profile with Some p -> p | None -> Runtime.Profile.create () in
  let backing = Option.map (fun pages -> Allocators.Backing.create ~pages) page_budget in
  let sink = if telemetry then Some (Telemetry.Sink.create ()) else None in
  let label = Printf.sprintf "fleet sessions=%d cpus=%d" n cpus in
  Telemetry.Guard.with_exclusive label @@ fun () ->
  let njobs = List.length jobs in
  let job_arr = Array.of_list jobs in
  let queues : session list ref array = Array.init cpus (fun _ -> ref []) in
  let vclock = Array.make cpus 0 in
  let next_id = ref 0 in
  let live = ref 0 in
  let yields = ref 0 in
  let steals = ref 0 in
  let finished : session_result list ref = ref [] in
  let nfinished = ref 0 in
  let ambient_batched = !Engine.Value.batched_slots in
  let admit c =
    let id = !next_id in
    incr next_id;
    incr live;
    let job = job_arr.(id mod njobs) in
    let job = { job with job_name = Printf.sprintf "%s#%d" job.job_name id } in
    let sess =
      {
        s_id = id;
        s_job = job;
        s_cpu = c;
        s_admitted_at = vclock.(c);
        s_env = None;
        s_browser = None;
        s_cont = None;
        s_last_cycles = 0;
        s_batched = ambient_batched;
      }
    in
    queues.(c) := !(queues.(c)) @ [ sess ]
  in
  (* Eager admission: keep [max_live] sessions materialised as long as
     descriptors remain, each onto the currently shortest queue (lowest
     index breaks ties).  This is what makes sessions *concurrent* — they
     queue behind each other (latency = queueing + service) and contend
     for the shared page budget — while [max_live] still bounds host
     memory at N=100k. *)
  let admit_pending () =
    while !next_id < n && !live < max_live do
      let best = ref 0 in
      for i = 1 to cpus - 1 do
        if List.length !(queues.(i)) < List.length !(queues.(!best)) then best := i
      done;
      admit !best
    done
  in
  (* Steal the back half of the longest other queue (>= 2 entries so the
     victim keeps its head).  Deterministic: longest wins, lowest index
     breaks ties. *)
  let try_steal c =
    let victim = ref (-1) and best = ref 1 in
    Array.iteri
      (fun i q ->
        let len = List.length !q in
        if i <> c && len > !best then begin
          victim := i;
          best := len
        end)
      queues;
    if !victim >= 0 && !best >= 2 then begin
      let q = !(queues.(!victim)) in
      let keep = List.length q - (List.length q / 2) in
      let kept = List.filteri (fun i _ -> i < keep) q in
      let stolen = List.filteri (fun i _ -> i >= keep) q in
      queues.(!victim) := kept;
      List.iter (fun s -> s.s_cpu <- c) stolen;
      queues.(c) := !(queues.(c)) @ stolen;
      steals := !steals + List.length stolen
    end
  in
  (* Serve the CPU with the smallest virtual clock; at equal clocks a
     CPU with runnable work beats an idle one, lower id breaks the rest. *)
  let select () =
    let best = ref 0 in
    for c = 1 to cpus - 1 do
      let better =
        vclock.(c) < vclock.(!best)
        || (vclock.(c) = vclock.(!best)
            && !(queues.(c)) <> [] && !(queues.(!best)) = [])
      in
      if better then best := c
    done;
    !best
  in
  let finalize c sess outcome =
    decr live;
    incr nfinished;
    let cycles, transitions, output =
      match sess.s_env, sess.s_browser with
      | Some env, Some browser ->
        (Pkru_safe.Env.cycles env, Pkru_safe.Env.transitions env, Browser.console browser)
      | Some env, None -> (Pkru_safe.Env.cycles env, Pkru_safe.Env.transitions env, [])
      | None, _ -> (0, 0, [])
    in
    (* Teardown: pages back to the shared budget, hook and references
       dropped so the session's machine is collectable under max_live. *)
    (match sess.s_env with
    | Some env -> Allocators.Pkalloc.retire (Pkru_safe.Env.pkalloc env)
    | None -> ());
    (match sess.s_browser with
    | Some browser -> Engine.Eval.set_yield_hook (Engine.evaluator (Browser.engine browser)) None
    | None -> ());
    sess.s_env <- None;
    sess.s_browser <- None;
    sess.s_cont <- None;
    finished :=
      {
        sr_index = sess.s_id;
        sr_name = sess.s_job.job_name;
        sr_cpu = sess.s_cpu;
        sr_cycles = cycles;
        sr_transitions = transitions;
        sr_checksum = checksum ~output ~cycles ~transitions;
        sr_latency_cycles = vclock.(c) - sess.s_admitted_at;
        sr_outcome = outcome;
      }
      :: !finished
  in
  (* Garmr defense (gate_reverify): before restoring a parked
     continuation, re-check the session's live PKRU against its gate's
     resident view.  A mismatch means some other hart flipped PKRU while
     the session was parked; the session is retired fail-stop without
     running a single instruction of the slice (the one-shot continuation
     is dropped, not resumed — exactly a kernel refusing to schedule a
     corrupted thread).  [None] = clean. *)
  let reverify_on_resume sess =
    if not defenses.Pkru_safe.Config.gate_reverify then None
    else
      match sess.s_env with
      | None -> None
      | Some env -> (
        try
          Runtime.Gate.reverify (Pkru_safe.Env.gate env);
          None
        with Sim.Signals.Process_killed msg -> Some msg)
  in
  let run_slice c sess =
    Engine.Value.batched_slots := sess.s_batched;
    let step =
      match sess.s_cont with
      | Some k -> (
        sess.s_cont <- None;
        match reverify_on_resume sess with
        | Some msg -> Done (Failed msg)
        | None -> Effect.Deep.continue k ())
      | None ->
        Effect.Deep.match_with
          (session_body ~mode ~profile ~backing ~tier ~timeslice ~sink ~defenses sess)
          () handler
    in
    (* Advance the CPU by the simulated cycles this slice retired. *)
    (match sess.s_env with
    | Some env ->
      let now = Sim.Machine.cycles (Pkru_safe.Env.machine env) in
      vclock.(c) <- vclock.(c) + (now - sess.s_last_cycles);
      sess.s_last_cycles <- now
    | None -> ());
    match step with
    | Parked k ->
      incr yields;
      sess.s_batched <- !Engine.Value.batched_slots;
      sess.s_cont <- Some k;
      queues.(c) := !(queues.(c)) @ [ sess ]
    | Done outcome -> finalize c sess outcome
  in
  Fun.protect ~finally:(fun () -> Engine.Value.batched_slots := ambient_batched)
  @@ fun () ->
  while !nfinished < n do
    admit_pending ();
    let c = select () in
    if !(queues.(c)) = [] then try_steal c;
    match !(queues.(c)) with
    | sess :: rest ->
      queues.(c) := rest;
      run_slice c sess
    | [] ->
      (* Nothing runnable here: skip this CPU's clock forward to the
         busiest frontier so a loaded CPU (or the admission gate) makes
         progress next iteration. *)
      let m = ref max_int in
      Array.iteri (fun i q -> if !q <> [] && vclock.(i) < !m then m := vclock.(i)) queues;
      if !m < max_int then vclock.(c) <- max vclock.(c) !m
      else if !next_id < n then ()
        (* queues all empty but sessions remain: admission was gated by
           max_live and frees next loop (live just dropped) — retry. *)
      else assert (!nfinished >= n)
  done;
  let makespan = Array.fold_left max 0 vclock in
  (* Admission order, not completion order: completion order depends on
     the CPU count, and callers compare per-session results across CPU
     counts positionally. *)
  let results =
    List.sort (fun a b -> compare a.sr_index b.sr_index) !finished
  in
  let latencies =
    List.map (fun r -> float_of_int r.sr_latency_cycles) results
  in
  let count p = List.length (List.filter p results) in
  {
    r_sessions = n;
    r_cpus = cpus;
    r_timeslice = timeslice;
    r_makespan_cycles = makespan;
    r_sessions_per_sec =
      (if makespan = 0 then 0.0 else float_of_int n *. 1e9 /. float_of_int makespan);
    r_p50_latency_ns = Util.Stats.percentile 50.0 latencies;
    r_p99_latency_ns = Util.Stats.percentile 99.0 latencies;
    r_total_cycles = List.fold_left (fun acc r -> acc + r.sr_cycles) 0 results;
    r_yields = !yields;
    r_steals = !steals;
    r_completed = count (fun r -> r.sr_outcome = Completed);
    r_oom = count (fun r -> r.sr_outcome = Oom);
    r_failed = count (fun r -> match r.sr_outcome with Failed _ -> true | _ -> false);
    r_results = results;
    r_trace = sink;
    r_backing =
      Option.map
        (fun b ->
          {
            bk_total_pages = Allocators.Backing.total b;
            bk_min_available = Allocators.Backing.min_available b;
            bk_denials = Allocators.Backing.denials b;
          })
        backing;
  }

(* --- Attack-program scheduling (the Garmr battery) ----------------------

   [run_programs] multiplexes raw OCaml programs over ONE shared
   environment — unlike [run], whose sessions are structurally
   independent.  Sharing is the point: the Garmr attack classes only
   materialise when an attacker hart races a victim on the same machine
   (same page table, same signal dispositions, sibling harts).  Each
   program gets its own simulated thread (hart + gate + compartment
   stack); an explicit [yield] callback parks it mid-slice wherever it
   likes — including while resident in U, mid-gate — and the scheduler
   always resumes the runnable program whose hart has retired the fewest
   cycles (lowest index breaks ties), a deterministic discrete-event
   interleaving for any program count.

   When the environment's config enables [gate_reverify], every resume
   re-checks the thread's live PKRU against its gate's resident view
   before the slice runs; a mismatch retires the program fail-stop
   (continuation dropped, never resumed) with the flight dump naming the
   program — i.e. the attack — that died. *)

type program = {
  p_name : string;
  p_body : yield:(unit -> unit) -> unit;
}

type program_result = {
  pr_name : string;
  pr_hart : int;
  pr_outcome : outcome;
  pr_cycles : int; (* cycles this program's hart retired *)
  pr_yields : int;
  pr_resumes : int;
}

type battery = {
  b_programs : program_result list; (* program order *)
  b_makespan_cycles : int; (* max over program-hart cycles *)
  b_yields : int;
  b_resume_checks : int; (* gate re-verifications performed on resume *)
  b_resume_kills : int; (* resumes refused by re-verification *)
}

type prog_state = {
  ps_idx : int;
  ps_name : string;
  ps_thread : Pkru_safe.Env.thread;
  ps_body : yield:(unit -> unit) -> unit;
  mutable ps_started : bool;
  mutable ps_cont : (unit, step) Effect.Deep.continuation option;
  mutable ps_done : outcome option;
  mutable ps_yields : int;
  mutable ps_resumes : int;
}

let run_programs env programs =
  if programs = [] then invalid_arg "Fleet.run_programs: no programs";
  let defenses = (Pkru_safe.Env.config env).Pkru_safe.Config.defenses in
  let n = List.length programs in
  Telemetry.Guard.with_exclusive (Printf.sprintf "attack battery (%d programs)" n)
  @@ fun () ->
  let states =
    List.mapi
      (fun i (p : program) ->
        {
          ps_idx = i;
          ps_name = p.p_name;
          ps_thread = Pkru_safe.Env.spawn_thread env;
          ps_body = p.p_body;
          ps_started = false;
          ps_cont = None;
          ps_done = None;
          ps_yields = 0;
          ps_resumes = 0;
        })
      programs
  in
  let yields = ref 0 and resume_checks = ref 0 and resume_kills = ref 0 in
  let hart_cycles st = Sim.Cpu.cycles (Pkru_safe.Env.thread_cpu st.ps_thread) in
  (* Serve the runnable program whose hart has retired the fewest
     cycles; earlier program index breaks ties.  Every runnable program
     either starts or resumes, so the loop always terminates. *)
  let pick () =
    List.fold_left
      (fun best st ->
        match (best, st.ps_done) with
        | _, Some _ -> best
        | None, None -> Some st
        | Some b, None -> if hart_cycles st < hart_cycles b then Some st else best)
      None states
  in
  let run_slice st =
    let previous = Pkru_safe.Env.activate_thread env st.ps_thread in
    let step =
      if not st.ps_started then begin
        st.ps_started <- true;
        Effect.Deep.match_with
          (fun () -> st.ps_body ~yield:(fun () -> Effect.perform Yield))
          () handler
      end
      else begin
        let k = Option.get st.ps_cont in
        st.ps_cont <- None;
        st.ps_resumes <- st.ps_resumes + 1;
        let killed =
          if not defenses.Pkru_safe.Config.gate_reverify then None
          else begin
            incr resume_checks;
            try
              Runtime.Gate.reverify ~attack:st.ps_name
                (Pkru_safe.Env.thread_gate st.ps_thread);
              None
            with Sim.Signals.Process_killed msg -> Some msg
          end
        in
        match killed with
        | Some msg ->
          (* Fail-stop: the one-shot continuation is dropped, not
             resumed — the corrupted thread never runs again. *)
          incr resume_kills;
          Done (Failed msg)
        | None -> Effect.Deep.continue k ()
      end
    in
    ignore (Pkru_safe.Env.activate_thread env previous);
    match step with
    | Parked k ->
      incr yields;
      st.ps_yields <- st.ps_yields + 1;
      st.ps_cont <- Some k
    | Done outcome ->
      st.ps_cont <- None;
      st.ps_done <- Some outcome
  in
  let rec loop () =
    match pick () with
    | None -> ()
    | Some st ->
      run_slice st;
      loop ()
  in
  loop ();
  let results =
    List.map
      (fun st ->
        {
          pr_name = st.ps_name;
          pr_hart = (Pkru_safe.Env.thread_cpu st.ps_thread).Sim.Cpu.id;
          pr_outcome = (match st.ps_done with Some o -> o | None -> assert false);
          pr_cycles = hart_cycles st;
          pr_yields = st.ps_yields;
          pr_resumes = st.ps_resumes;
        })
      states
  in
  {
    b_programs = results;
    b_makespan_cycles = List.fold_left (fun acc r -> max acc r.pr_cycles) 0 results;
    b_yields = !yields;
    b_resume_checks = !resume_checks;
    b_resume_kills = !resume_kills;
  }

(* --- Export --- *)

let metrics r =
  let m = Telemetry.Metrics.create () in
  let outcome_counter outcome v =
    let c =
      Telemetry.Metrics.counter m ~help:"Sessions retired, by outcome"
        ~labels:[ ("outcome", outcome) ] "pkru_fleet_sessions_total"
    in
    Telemetry.Metrics.incr ~by:v c
  in
  outcome_counter "completed" r.r_completed;
  outcome_counter "oom" r.r_oom;
  outcome_counter "failed" r.r_failed;
  Telemetry.Metrics.set
    (Telemetry.Metrics.gauge m ~help:"Fleet throughput (sessions per simulated second)"
       "pkru_fleet_sessions_per_sec")
    r.r_sessions_per_sec;
  Telemetry.Metrics.set
    (Telemetry.Metrics.gauge m ~help:"Scheduler CPUs" "pkru_fleet_cpus")
    (float_of_int r.r_cpus);
  Telemetry.Metrics.set
    (Telemetry.Metrics.gauge m ~help:"Fleet makespan in simulated cycles"
       "pkru_fleet_makespan_cycles")
    (float_of_int r.r_makespan_cycles);
  Telemetry.Metrics.set
    (Telemetry.Metrics.gauge m ~help:"Session latency, ns"
       ~labels:[ ("quantile", "0.5") ] "pkru_fleet_session_latency_ns")
    r.r_p50_latency_ns;
  Telemetry.Metrics.set
    (Telemetry.Metrics.gauge m ~help:"Session latency, ns"
       ~labels:[ ("quantile", "0.99") ] "pkru_fleet_session_latency_ns")
    r.r_p99_latency_ns;
  Telemetry.Metrics.incr ~by:r.r_yields
    (Telemetry.Metrics.counter m ~help:"Cooperative yields" "pkru_fleet_yields_total");
  Telemetry.Metrics.incr ~by:r.r_steals
    (Telemetry.Metrics.counter m ~help:"Sessions migrated by work stealing"
       "pkru_fleet_steals_total");
  let latency_hist = Telemetry.Histogram.create () in
  List.iter (fun sr -> Telemetry.Histogram.observe latency_hist sr.sr_latency_cycles) r.r_results;
  Telemetry.Metrics.attach_histogram m ~help:"Session latency distribution, ns"
    "pkru_fleet_session_latency_ns_hist" latency_hist;
  (match r.r_backing with
  | None -> ()
  | Some b ->
    Telemetry.Metrics.set
      (Telemetry.Metrics.gauge m ~help:"Shared backing budget, pages" "pkru_fleet_backing_pages")
      (float_of_int b.bk_total_pages);
    Telemetry.Metrics.set
      (Telemetry.Metrics.gauge m ~help:"Backing budget low-water mark, pages"
         "pkru_fleet_backing_min_available_pages")
      (float_of_int b.bk_min_available);
    Telemetry.Metrics.incr ~by:b.bk_denials
      (Telemetry.Metrics.counter m ~help:"Backing budget denials" "pkru_fleet_backing_denials_total"));
  m

let to_json ?(per_session = false) r =
  let open Util.Json in
  let fields =
    [
      ("sessions", Int r.r_sessions);
      ("cpus", Int r.r_cpus);
      ("timeslice_ticks", Int r.r_timeslice);
      ("makespan_cycles", Int r.r_makespan_cycles);
      ("sessions_per_sec", Float r.r_sessions_per_sec);
      ("p50_latency_ns", Float r.r_p50_latency_ns);
      ("p99_latency_ns", Float r.r_p99_latency_ns);
      ("total_cycles", Int r.r_total_cycles);
      ("yields", Int r.r_yields);
      ("steals", Int r.r_steals);
      ("completed", Int r.r_completed);
      ("oom", Int r.r_oom);
      ("failed", Int r.r_failed);
    ]
  in
  let fields =
    match r.r_backing with
    | None -> fields
    | Some b ->
      fields
      @ [
          ( "backing",
            Obj
              [
                ("total_pages", Int b.bk_total_pages);
                ("min_available_pages", Int b.bk_min_available);
                ("denials", Int b.bk_denials);
              ] );
        ]
  in
  let fields =
    if not per_session then fields
    else
      fields
      @ [
          ( "sessions_detail",
            List
              (List.map
                 (fun sr ->
                   Obj
                     [
                       ("name", String sr.sr_name);
                       ("cpu", Int sr.sr_cpu);
                       ("cycles", Int sr.sr_cycles);
                       ("transitions", Int sr.sr_transitions);
                       ("checksum", Int sr.sr_checksum);
                       ("latency_cycles", Int sr.sr_latency_cycles);
                       ("outcome", String (outcome_to_string sr.sr_outcome));
                     ])
                 r.r_results) );
        ]
  in
  Obj fields
