let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.0
  | xs ->
    List.iter
      (fun x ->
        if x <= 0.0 then
          invalid_arg (Printf.sprintf "Stats.geomean: non-positive value %g" x))
      xs;
    let log_sum = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (log_sum /. float_of_int (List.length xs))

(* Linear interpolation between closest ranks (the "exclusive" method used
   by most benchmark harnesses degenerates on tiny samples; this is the
   inclusive variant: p=0 is the min, p=100 the max). *)
let percentile p xs =
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: rank outside [0, 100]";
  match xs with
  | [] -> invalid_arg "Stats.percentile: empty sample"
  | xs ->
    let sorted = Array.of_list xs in
    Array.sort compare sorted;
    let n = Array.length sorted in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then sorted.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
    end

let stddev = function
  | [] | [ _ ] -> 0.0
  | xs ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
    sqrt var

let percent_overhead ~baseline ~measured =
  assert (baseline <> 0.0);
  (measured -. baseline) /. baseline *. 100.0

let normalized ~baseline ~measured =
  assert (baseline <> 0.0);
  measured /. baseline
