(** Small statistics helpers used by the benchmark harness. *)

val mean : float list -> float
(** Arithmetic mean; 0.0 on the empty list. *)

val geomean : float list -> float
(** Geometric mean; 0.0 on the empty list.
    @raise Invalid_argument on any non-positive value. *)

val percentile : float -> float list -> float
(** [percentile p xs] is the inclusive linearly-interpolated [p]-th
    percentile: [percentile 0.0] is the minimum, [percentile 100.0] the
    maximum, [percentile 50.0] the median.
    @raise Invalid_argument on an empty sample or a rank outside
    [\[0, 100\]]. *)

val stddev : float list -> float
(** Population standard deviation; 0.0 for fewer than two samples. *)

val percent_overhead : baseline:float -> measured:float -> float
(** [(measured - baseline) / baseline * 100].  [baseline] must be non-zero. *)

val normalized : baseline:float -> measured:float -> float
(** [measured / baseline].  [baseline] must be non-zero. *)
