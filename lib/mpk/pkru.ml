type t = int

type rights =
  | Enable
  | Disable_write
  | Disable_access

let all_enabled = 0

let of_int v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg (Printf.sprintf "Pkru.of_int: %d" v);
  v

let to_int v = v

let ad_bit key = 1 lsl (2 * Pkey.to_int key)
let wd_bit key = 1 lsl ((2 * Pkey.to_int key) + 1)

let set_rights pkru key r =
  let cleared = pkru land lnot (ad_bit key lor wd_bit key) in
  match r with
  | Enable -> cleared
  | Disable_write -> cleared lor wd_bit key
  | Disable_access -> cleared lor ad_bit key

let rights pkru key =
  if pkru land ad_bit key <> 0 then Disable_access
  else if pkru land wd_bit key <> 0 then Disable_write
  else Enable

let can_read pkru key = pkru land ad_bit key = 0

let can_write pkru key = pkru land (ad_bit key lor wd_bit key) = 0

(* Both permissions decoded in one pass, for callers that precompute
   access masks (the simulator's software TLB). *)
let access_bits pkru key =
  let ad = ad_bit key in
  let wd = wd_bit key in
  (if pkru land ad = 0 then 1 else 0) lor (if pkru land (ad lor wd) = 0 then 2 else 0)

let all_disabled_except keys =
  let enabled key =
    Pkey.equal key Pkey.default || List.exists (Pkey.equal key) keys
  in
  let rec build k pkru =
    if k >= Pkey.count then pkru
    else
      let key = Pkey.of_int k in
      let pkru =
        if enabled key then set_rights pkru key Enable
        else set_rights pkru key Disable_access
      in
      build (k + 1) pkru
  in
  build 0 all_enabled

let equal = Int.equal

let pp fmt pkru = Format.fprintf fmt "pkru:0x%08x" pkru
