(** The PKRU register.

    PKRU holds two bits per protection key: AD (access disable, bit [2k])
    and WD (write disable, bit [2k+1]).  A load from a page tagged with key
    [k] is permitted iff AD is clear; a store additionally requires WD
    clear.  Key 0's rights are typically left enabled, matching Linux,
    which never disables key 0 for regular processes.

    Values are immutable ints so they can be compared and stored in the
    per-thread compartment stack exactly as the paper's call gates do. *)

type t = private int

type rights =
  | Enable          (** read and write allowed *)
  | Disable_write   (** read-only: WD set *)
  | Disable_access  (** no access: AD set *)

val all_enabled : t
(** PKRU of 0: every key readable and writable. *)

val all_disabled_except : Pkey.t list -> t
(** [all_disabled_except keys] builds a PKRU denying access to every key
    except those in [keys] (and key 0, which stays enabled as on Linux). *)

val set_rights : t -> Pkey.t -> rights -> t
(** [set_rights pkru key r] returns [pkru] with [key]'s two bits replaced. *)

val rights : t -> Pkey.t -> rights
(** [rights pkru key] decodes the two bits for [key]. *)

val can_read : t -> Pkey.t -> bool
(** AD clear for the key. *)

val can_write : t -> Pkey.t -> bool
(** AD and WD both clear for the key. *)

val access_bits : t -> Pkey.t -> int
(** Both permissions decoded at once: bit 0 set iff {!can_read}, bit 1 set
    iff {!can_write} — the shape cached-permission-mask consumers (the
    simulator's software TLB) want. *)

val of_int : int -> t
(** Raw 32-bit constructor, for WRPKRU modelling.
    @raise Invalid_argument if out of unsigned 32-bit range. *)

val to_int : t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
