(* Tests for the continuous heap census: architectural invisibility
   (censused and uncensused runs retire bit-identical cycles, event
   traces and counters), snapshot content, and the metrics export. *)

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.fail msg

let small_bench =
  Workloads.Bench_def.bench ~page:(Workloads.Dom_scripts.page ~rows:4) "census-bench"
    (Workloads.Dom_scripts.dom_attr ~iters:8)

let bench_profile () =
  Workloads.Runner.profile_suite
    { Workloads.Bench_def.suite_name = "census"; benches = [ small_bench ] }

(* (1) The census must not perturb measurements: a censused run equals an
   uncensused one in every field the paper's tables derive from, and two
   uncensused runs equal each other (determinism control). *)
let test_census_does_not_perturb_measurements () =
  let profile = bench_profile () in
  let strip (m : Workloads.Runner.measurement) =
    ( m.Workloads.Runner.cycles,
      m.Workloads.Runner.transitions,
      m.Workloads.Runner.pct_mu,
      m.Workloads.Runner.mt_bytes,
      m.Workloads.Runner.mu_bytes,
      m.Workloads.Runner.output )
  in
  let run ?census_every () =
    strip (Workloads.Runner.run_config ?census_every ~mode:Pkru_safe.Config.Mpk ~profile small_bench)
  in
  let off1 = run () in
  let off2 = run () in
  let on = run ~census_every:32 () in
  Alcotest.(check bool) "uncensused runs identical" true (off1 = off2);
  Alcotest.(check bool) "censused run does not perturb" true (off1 = on)

(* (2) Event traces and counters are bit-identical with the census on or
   off: snapshots record spans only, never events.  The censused run's
   span store must additionally carry census-kind spans. *)
let test_census_event_trace_bit_identical () =
  let profile = bench_profile () in
  let run ?census_every () =
    let m =
      Workloads.Runner.run_config ~telemetry:true ?census_every ~mode:Pkru_safe.Config.Mpk
        ~profile small_bench
    in
    (m, Option.get m.Workloads.Runner.trace)
  in
  let m_off, sink_off = run () in
  let m_on, sink_on = run ~census_every:32 () in
  Alcotest.(check int) "cycles bit-identical" m_off.Workloads.Runner.cycles
    m_on.Workloads.Runner.cycles;
  Alcotest.(check bool) "event traces bit-identical" true
    (Telemetry.Sink.events sink_off = Telemetry.Sink.events sink_on);
  Alcotest.(check bool) "counters bit-identical" true
    (Telemetry.Sink.counters sink_off = Telemetry.Sink.counters sink_on);
  let census_spans sink =
    List.filter
      (fun (r : Telemetry.Span.record) -> r.Telemetry.Span.kind = Telemetry.Span.Census)
      (Telemetry.Span.closed (Telemetry.Sink.spans sink))
  in
  Alcotest.(check int) "no census spans when off" 0 (List.length (census_spans sink_off));
  Alcotest.(check bool) "census spans recorded when on" true (census_spans sink_on <> [])

(* (3) Enabling the live-object table alone (track_census without an
   installed census) must also leave the run bit-identical: the
   bookkeeping is pure OCaml, off the simulated machine. *)
let test_tracking_alone_does_not_perturb () =
  let profile = bench_profile () in
  let run tracked =
    let env =
      ok (Pkru_safe.Env.create ~profile (Pkru_safe.Config.make Pkru_safe.Config.Mpk))
    in
    if tracked then Pkru_safe.Env.track_census env;
    let browser =
      Browser.create ~engine_seed:small_bench.Workloads.Bench_def.engine_seed env
    in
    Browser.load_page browser small_bench.Workloads.Bench_def.page;
    ignore (Browser.exec_script browser small_bench.Workloads.Bench_def.script);
    (Pkru_safe.Env.cycles env, Pkru_safe.Env.transitions env, Browser.console browser)
  in
  Alcotest.(check bool) "tracked run identical to untracked" true (run false = run true)

(* (4) Snapshot content: both pools reported, non-negative accounting,
   per-site live views present, object ages observed, snapshots kept in
   cycle order, and the tick cadence respected. *)
let test_snapshot_content () =
  let profile = bench_profile () in
  let m =
    Workloads.Runner.run_config ~census_every:64 ~mode:Pkru_safe.Config.Mpk ~profile
      small_bench
  in
  let census = Option.get m.Workloads.Runner.census in
  Alcotest.(check bool) "snapshots taken" true (Telemetry.Census.taken_total census > 0);
  Alcotest.(check int) "every" 64 (Telemetry.Census.every census);
  let snaps = Telemetry.Census.snapshots census in
  Alcotest.(check bool) "snapshots in ascending cycle order" true
    (List.sort
       (fun (a : Telemetry.Census.snapshot) b ->
         compare a.Telemetry.Census.at_cycle b.Telemetry.Census.at_cycle)
       snaps
    = snaps);
  let snap =
    match Telemetry.Census.latest census with Some s -> s | None -> Alcotest.fail "no snapshot"
  in
  let pool name =
    match
      List.find_opt
        (fun (p : Telemetry.Census.pool_stats) -> p.Telemetry.Census.cp_pool = name)
        snap.Telemetry.Census.pools
    with
    | Some p -> p
    | None -> Alcotest.fail ("missing pool " ^ name)
  in
  let mt = pool "mt" and mu = pool "mu" in
  Alcotest.(check bool) "mu has live bytes" true (mu.Telemetry.Census.cp_live_bytes > 0);
  List.iter
    (fun (p : Telemetry.Census.pool_stats) ->
      Alcotest.(check bool) "live bytes non-negative" true (p.Telemetry.Census.cp_live_bytes >= 0);
      Alcotest.(check bool) "peak >= live" true
        (p.Telemetry.Census.cp_peak_live_bytes >= p.Telemetry.Census.cp_live_bytes);
      Alcotest.(check bool) "high-water >= in-use" true
        (p.Telemetry.Census.cp_high_water_pages >= p.Telemetry.Census.cp_pages_in_use);
      Alcotest.(check bool) "fragmentation in [0,1]" true
        (p.Telemetry.Census.cp_fragmentation >= 0.0 && p.Telemetry.Census.cp_fragmentation <= 1.0))
    [ mt; mu ];
  Alcotest.(check bool) "per-site stats present" true (snap.Telemetry.Census.sites <> []);
  List.iter
    (fun (s : Telemetry.Census.site_stats) ->
      Alcotest.(check bool) "site pool tag" true
        (s.Telemetry.Census.cs_pool = "mt" || s.Telemetry.Census.cs_pool = "mu");
      Alcotest.(check bool) "site objects positive" true (s.Telemetry.Census.cs_live_objects > 0))
    snap.Telemetry.Census.sites;
  Alcotest.(check bool) "object ages observed" true
    (Telemetry.Histogram.count snap.Telemetry.Census.ages > 0)

(* (5) The digest round-trips through our JSON parser and reports the
   snapshot totals. *)
let test_digest_json_roundtrip () =
  let profile = bench_profile () in
  let m =
    Workloads.Runner.run_config ~census_every:64 ~mode:Pkru_safe.Config.Mpk ~profile
      small_bench
  in
  let census = Option.get m.Workloads.Runner.census in
  let parsed =
    Util.Json.of_string (Util.Json.to_string (Telemetry.Census.digest_json census))
  in
  Alcotest.(check int) "snapshots_total" (Telemetry.Census.taken_total census)
    (Util.Json.to_int (Util.Json.member "snapshots_total" parsed));
  Alcotest.(check int) "every" 64
    (Util.Json.to_int (Util.Json.member "census_every_cycles" parsed))

(* (6) The metrics export: pkru_census_* and pkru_pool_* families appear
   in the Prometheus exposition when a census is supplied. *)
let test_census_metrics_export () =
  let profile = bench_profile () in
  let m =
    Workloads.Runner.run_config ~telemetry:true ~census_every:64 ~mode:Pkru_safe.Config.Mpk
      ~profile small_bench
  in
  let sink = Option.get m.Workloads.Runner.trace in
  let census = Option.get m.Workloads.Runner.census in
  let prom = Telemetry.Export.prometheus ~census sink in
  let contains needle =
    let nl = String.length needle and hl = String.length prom in
    let rec go i = i + nl <= hl && (String.sub prom i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun family ->
      Alcotest.(check bool) (family ^ " exported") true (contains family))
    [
      "pkru_census_snapshots_total";
      "pkru_census_live_bytes";
      "pkru_census_site_live_bytes";
      "pkru_census_object_age_cycles";
      "pkru_pool_live_bytes";
      "pkru_pool_pages_in_use";
    ];
  (* Without a census the families must be absent. *)
  let prom_off = Telemetry.Export.prometheus sink in
  let contains_off needle =
    let nl = String.length needle and hl = String.length prom_off in
    let rec go i = i + nl <= hl && (String.sub prom_off i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "census families absent without census" false
    (contains_off "pkru_census_")

(* (7) A flight dump taken while a census is live embeds the latest
   snapshot, and the doctor renderer prints it. *)
let test_flight_dump_embeds_census () =
  let env = ok (Pkru_safe.Env.create (Pkru_safe.Config.make Pkru_safe.Config.Mpk)) in
  Pkru_safe.Env.track_census env;
  let site = Runtime.Alloc_id.make ~func_id:1 ~block_id:1 ~call_id:1 in
  let _ = Pkru_safe.Env.alloc env ~site 64 in
  let census = Telemetry.Census.create ~every:16 () in
  let recorder = Telemetry.Flight.create () in
  Telemetry.Flight.set_context recorder (Pkru_safe.Env.flight_context env);
  let dump =
    Telemetry.Census.with_census ~provider:(Pkru_safe.Env.census_snapshot env) census
      (fun () ->
        (* Charge past a period boundary so a snapshot exists. *)
        ignore (Pkru_safe.Env.malloc_untrusted env 32);
        Sim.Cpu.charge (List.hd (Sim.Machine.cpus (Pkru_safe.Env.machine env))) 64;
        Telemetry.Flight.record recorder ~reason:"census-embed-test" ~details:[])
  in
  let context = Util.Json.member "context" dump in
  (match Util.Json.member "census" context with
  | Util.Json.Obj _ -> ()
  | _ -> Alcotest.fail "dump context lacks a census snapshot");
  let rendered = Telemetry.Flight.render dump in
  let contains needle =
    let nl = String.length needle and hl = String.length rendered in
    let rec go i = i + nl <= hl && (String.sub rendered i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "doctor render shows the census" true (contains "heap census")

(* (8) Alloc_stats satellites: live-object and peak-live accounting. *)
let test_alloc_stats_peak () =
  let s = Allocators.Alloc_stats.create () in
  Allocators.Alloc_stats.record_alloc s 100;
  Allocators.Alloc_stats.record_alloc s 200;
  Alcotest.(check int) "live objects" 2 (Allocators.Alloc_stats.live_objects s);
  Alcotest.(check int) "peak at high water" 300 (Allocators.Alloc_stats.peak_live_bytes s);
  Allocators.Alloc_stats.record_free s 200;
  Alcotest.(check int) "live objects after free" 1 (Allocators.Alloc_stats.live_objects s);
  Alcotest.(check int) "live bytes after free" 100 (Allocators.Alloc_stats.live_bytes s);
  Alcotest.(check int) "peak survives the free" 300 (Allocators.Alloc_stats.peak_live_bytes s);
  Allocators.Alloc_stats.record_alloc s 50;
  Alcotest.(check int) "peak unchanged below high water" 300
    (Allocators.Alloc_stats.peak_live_bytes s)

let suite =
  [
    Alcotest.test_case "census does not perturb measurements" `Quick
      test_census_does_not_perturb_measurements;
    Alcotest.test_case "census event trace bit-identical" `Quick
      test_census_event_trace_bit_identical;
    Alcotest.test_case "tracking alone does not perturb" `Quick
      test_tracking_alone_does_not_perturb;
    Alcotest.test_case "snapshot content" `Quick test_snapshot_content;
    Alcotest.test_case "digest json roundtrip" `Quick test_digest_json_roundtrip;
    Alcotest.test_case "census metrics export" `Quick test_census_metrics_export;
    Alcotest.test_case "flight dump embeds census" `Quick test_flight_dump_embeds_census;
    Alcotest.test_case "alloc stats peak tracking" `Quick test_alloc_stats_peak;
  ]
