(* Tests for the util library: RNG determinism, JSON round-trips, stats and
   table layout. *)

let check_float = Alcotest.(check (float 1e-9))

let test_rng_deterministic () =
  let a = Util.Rng.create 42 in
  let b = Util.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Util.Rng.next a) (Util.Rng.next b)
  done

let test_rng_copy_diverges_original () =
  let a = Util.Rng.create 7 in
  ignore (Util.Rng.next a);
  let b = Util.Rng.copy a in
  Alcotest.(check int64) "copy continues the stream" (Util.Rng.next a) (Util.Rng.next b)

let test_rng_int_bounds () =
  let rng = Util.Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Util.Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_float_bounds () =
  let rng = Util.Rng.create 9 in
  for _ = 1 to 1000 do
    let v = Util.Rng.float rng 3.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 3.5)
  done

let test_rng_shuffle_is_permutation () =
  let rng = Util.Rng.create 5 in
  let a = Array.init 50 (fun i -> i) in
  Util.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_json_parse_basic () =
  let v = Util.Json.of_string {| {"a": 1, "b": [true, null, "x\n"], "c": -2.5} |} in
  Alcotest.(check int) "a" 1 Util.Json.(to_int (member "a" v));
  (match Util.Json.member "b" v with
  | Util.Json.List [ Util.Json.Bool true; Util.Json.Null; Util.Json.String "x\n" ] -> ()
  | _ -> Alcotest.fail "list shape");
  check_float "c" (-2.5) Util.Json.(to_float (member "c" v))

let test_json_errors () =
  let bad s =
    match Util.Json.of_string s with
    | exception Util.Json.Parse_error _ -> ()
    | _ -> Alcotest.fail ("should not parse: " ^ s)
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\" 1}";
  bad "tru";
  bad "1 2"

let test_json_unicode_escape () =
  match Util.Json.of_string {| "Aé" |} with
  | Util.Json.String s -> Alcotest.(check string) "utf8" "A\xc3\xa9" s
  | _ -> Alcotest.fail "not a string"

(* Random JSON generator for the round-trip property. *)
let json_gen =
  let open QCheck.Gen in
  sized @@ fix (fun self n ->
      let leaf =
        oneof
          [
            return Util.Json.Null;
            map (fun b -> Util.Json.Bool b) bool;
            map (fun i -> Util.Json.Int i) (int_range (-1000000) 1000000);
            map (fun f -> Util.Json.Float (Float.of_int f /. 16.0)) (int_range (-10000) 10000);
            map (fun s -> Util.Json.String s) (string_size ~gen:printable (int_range 0 12));
          ]
      in
      if n <= 0 then leaf
      else
        frequency
          [
            (3, leaf);
            (1, map (fun l -> Util.Json.List l) (list_size (int_range 0 4) (self (n / 2))));
            ( 1,
              map
                (fun kvs ->
                  (* Duplicate keys would not round-trip through assoc lookup. *)
                  let seen = Hashtbl.create 8 in
                  let kvs =
                    List.filter
                      (fun (k, _) ->
                        if Hashtbl.mem seen k then false
                        else begin
                          Hashtbl.add seen k ();
                          true
                        end)
                      kvs
                  in
                  Util.Json.Obj kvs)
                (list_size (int_range 0 4)
                   (pair (string_size ~gen:printable (int_range 1 8)) (self (n / 2)))) );
          ])

let prop_json_roundtrip =
  QCheck.Test.make ~count:300 ~name:"json round-trip (compact)"
    (QCheck.make json_gen)
    (fun v -> Util.Json.of_string (Util.Json.to_string v) = v)

let prop_json_roundtrip_pretty =
  QCheck.Test.make ~count:300 ~name:"json round-trip (pretty)"
    (QCheck.make json_gen)
    (fun v -> Util.Json.of_string (Util.Json.to_string_pretty v) = v)

let test_stats_mean_geomean () =
  check_float "mean" 2.0 (Util.Stats.mean [ 1.0; 2.0; 3.0 ]);
  check_float "geomean" 2.0 (Util.Stats.geomean [ 1.0; 4.0 ]);
  check_float "geomean3" 4.0 (Util.Stats.geomean [ 2.0; 4.0; 8.0 ]);
  check_float "empty mean" 0.0 (Util.Stats.mean []);
  check_float "overhead" 10.0 (Util.Stats.percent_overhead ~baseline:100.0 ~measured:110.0);
  check_float "normalized" 1.1 (Util.Stats.normalized ~baseline:100.0 ~measured:110.0)

let test_stats_geomean_rejects_nonpositive () =
  let raises xs =
    match Util.Stats.geomean xs with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "zero rejected" true (raises [ 1.0; 0.0; 4.0 ]);
  Alcotest.(check bool) "negative rejected" true (raises [ -2.0 ]);
  check_float "positive ok" 2.0 (Util.Stats.geomean [ 1.0; 4.0 ])

let test_stats_percentile () =
  let xs = [ 15.0; 20.0; 35.0; 40.0; 50.0 ] in
  check_float "p0 = min" 15.0 (Util.Stats.percentile 0.0 xs);
  check_float "p100 = max" 50.0 (Util.Stats.percentile 100.0 xs);
  check_float "p50 = median" 35.0 (Util.Stats.percentile 50.0 xs);
  (* rank = 0.25 * 4 = 1.0, exactly the second sample *)
  check_float "p25 on a sample" 20.0 (Util.Stats.percentile 25.0 xs);
  (* rank = 0.40 * 4 = 1.6: interpolate 20 .. 35 *)
  check_float "p40 interpolates" 29.0 (Util.Stats.percentile 40.0 xs);
  check_float "median of pair" 15.0 (Util.Stats.percentile 50.0 [ 10.0; 20.0 ]);
  check_float "singleton" 7.0 (Util.Stats.percentile 99.0 [ 7.0 ]);
  (* unsorted input must be sorted internally *)
  check_float "unsorted input" 35.0 (Util.Stats.percentile 50.0 [ 50.0; 15.0; 35.0; 40.0; 20.0 ])

let test_stats_percentile_rejects () =
  let raises f = match f () with exception Invalid_argument _ -> true | _ -> false in
  Alcotest.(check bool) "empty sample" true (raises (fun () -> Util.Stats.percentile 50.0 []));
  Alcotest.(check bool) "p < 0" true (raises (fun () -> Util.Stats.percentile (-1.0) [ 1.0 ]));
  Alcotest.(check bool) "p > 100" true (raises (fun () -> Util.Stats.percentile 101.0 [ 1.0 ]))

let test_stats_stddev () =
  check_float "stddev" 2.0 (Util.Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ]);
  check_float "single" 0.0 (Util.Stats.stddev [ 3.0 ])

let test_table_render () =
  let out =
    Util.Table.render ~header:[ "name"; "value" ] [ [ "alpha"; "1" ]; [ "b"; "22" ] ]
  in
  let lines = String.split_on_char '\n' out in
  (match lines with
  | header :: rule :: _ ->
    Alcotest.(check bool) "header has both columns" true
      (String.length header >= String.length "name   value");
    Alcotest.(check bool) "rule is dashes" true (String.for_all (fun c -> c = '-' || c = ' ') rule)
  | _ -> Alcotest.fail "too short");
  Alcotest.(check int) "line count" 5 (List.length lines)

let test_table_pads_short_rows () =
  let out = Util.Table.render ~header:[ "a"; "b"; "c" ] [ [ "x" ] ] in
  Alcotest.(check bool) "renders" true (String.length out > 0)

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng copy" `Quick test_rng_copy_diverges_original;
    Alcotest.test_case "rng int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "rng float bounds" `Quick test_rng_float_bounds;
    Alcotest.test_case "rng shuffle permutation" `Quick test_rng_shuffle_is_permutation;
    Alcotest.test_case "json parse basic" `Quick test_json_parse_basic;
    Alcotest.test_case "json errors" `Quick test_json_errors;
    Alcotest.test_case "json unicode escape" `Quick test_json_unicode_escape;
    QCheck_alcotest.to_alcotest prop_json_roundtrip;
    QCheck_alcotest.to_alcotest prop_json_roundtrip_pretty;
    Alcotest.test_case "stats mean/geomean/overhead" `Quick test_stats_mean_geomean;
    Alcotest.test_case "stats geomean rejects non-positive" `Quick
      test_stats_geomean_rejects_nonpositive;
    Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
    Alcotest.test_case "stats percentile rejects" `Quick test_stats_percentile_rejects;
    Alcotest.test_case "stats stddev" `Quick test_stats_stddev;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table pads short rows" `Quick test_table_pads_short_rows;
  ]
