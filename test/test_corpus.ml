(* Tests for the profiling corpus (§6 telemetry-style deployment): run
   aggregation, coverage analysis, sampling, persistence, and an
   end-to-end corpus-driven enforcement build on the browser. *)

let site = Runtime.Alloc_id.synthetic

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.fail msg

let profile_of sites =
  let p = Runtime.Profile.create () in
  List.iter (fun s -> Runtime.Profile.record p (site s)) sites;
  p

let sample_corpus () =
  let c = Runtime.Corpus.create () in
  Runtime.Corpus.add_run c ~name:"wpt" (profile_of [ 1; 2 ]);
  Runtime.Corpus.add_run c ~name:"jquery" (profile_of [ 2; 3 ]);
  Runtime.Corpus.add_run c ~name:"webidl" (profile_of [ 2 ]);
  c

let test_merge_and_coverage () =
  let c = sample_corpus () in
  Alcotest.(check int) "runs" 3 (Runtime.Corpus.run_count c);
  Alcotest.(check int) "merged sites" 3 (Runtime.Profile.cardinal (Runtime.Corpus.merged c));
  Alcotest.(check int) "site 2 in every run" 3 (Runtime.Corpus.coverage c (site 2));
  Alcotest.(check int) "site 1 in one run" 1 (Runtime.Corpus.coverage c (site 1));
  Alcotest.(check int) "unknown site" 0 (Runtime.Corpus.coverage c (site 99))

let test_fragile_sites () =
  let c = sample_corpus () in
  let fragile = Runtime.Corpus.fragile_sites c ~max_runs:1 in
  Alcotest.(check int) "two single-run sites" 2 (List.length fragile);
  Alcotest.(check bool) "site 2 is robust" false
    (List.exists (Runtime.Alloc_id.equal (site 2)) fragile)

let test_marginal_gains () =
  let c = sample_corpus () in
  Alcotest.(check (list (pair string int))) "growth curve"
    [ ("wpt", 2); ("jquery", 1); ("webidl", 0) ]
    (Runtime.Corpus.marginal_gains c)

let test_duplicate_run_rejected () =
  let c = sample_corpus () in
  Alcotest.(check bool) "duplicate rejected" true
    (match Runtime.Corpus.add_run c ~name:"wpt" (profile_of []) with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_sampling () =
  let c = sample_corpus () in
  let rng = Util.Rng.create 5 in
  Alcotest.(check int) "all" 3
    (Runtime.Corpus.run_count (Runtime.Corpus.sample c ~fraction:1.0 ~rng));
  Alcotest.(check int) "none" 0
    (Runtime.Corpus.run_count (Runtime.Corpus.sample c ~fraction:0.0 ~rng))

(* Sampling is a pure function of the Rng state: the same seed must select
   the same runs (the profile-coverage ablation depends on this to be
   reproducible), and a different seed is free to differ. *)
let test_sampling_deterministic_under_seed () =
  let c = Runtime.Corpus.create () in
  for i = 1 to 16 do
    Runtime.Corpus.add_run c ~name:(Printf.sprintf "run%02d" i) (profile_of [ i ])
  done;
  let pick seed =
    let rng = Util.Rng.create seed in
    List.map fst (Runtime.Corpus.runs (Runtime.Corpus.sample c ~fraction:0.5 ~rng))
  in
  let a = pick 42 in
  let b = pick 42 in
  Alcotest.(check (list string)) "same seed, same subset" a b;
  (* The half-fraction subset must be non-trivial for the check to mean
     anything; with 16 runs the binomial tails are astronomically far. *)
  Alcotest.(check bool) "subset non-empty" true (a <> []);
  Alcotest.(check bool) "subset proper" true (List.length a < 16);
  Alcotest.(check bool) "some seed differs" true
    (List.exists (fun seed -> pick seed <> a) [ 1; 2; 3; 4; 5 ])

let test_save_load_roundtrip () =
  let c = sample_corpus () in
  let dir = Filename.temp_file "pkru-corpus" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () ->
      Runtime.Corpus.save_dir c dir;
      (* The on-disk layout is the artifact's: a corpus.json index naming
         the runs in collection order, one profile file per run. *)
      let index =
        Util.Json.of_string
          (In_channel.with_open_text (Filename.concat dir "corpus.json") In_channel.input_all)
      in
      Alcotest.(check (list string)) "index lists runs in order" [ "wpt"; "jquery"; "webidl" ]
        (List.map Util.Json.to_str (Util.Json.to_list (Util.Json.member "runs" index)));
      List.iter
        (fun name ->
          Alcotest.(check bool) (name ^ " profile file exists") true
            (Sys.file_exists (Filename.concat dir (name ^ ".profile.json"))))
        [ "wpt"; "jquery"; "webidl" ];
      let c' = Runtime.Corpus.load_dir dir in
      Alcotest.(check int) "runs survive" 3 (Runtime.Corpus.run_count c');
      Alcotest.(check (list string)) "order preserved" [ "wpt"; "jquery"; "webidl" ]
        (List.map fst (Runtime.Corpus.runs c'));
      Alcotest.(check int) "merged agrees" 3
        (Runtime.Profile.cardinal (Runtime.Corpus.merged c'));
      Alcotest.(check int) "site 2 coverage survives" 3 (Runtime.Corpus.coverage c' (site 2)))

(* End-to-end: build the browser's deployment profile from a corpus of
   distinct browsing sessions, as the paper did with WPT + jQuery + WebIDL
   + Selenium browsing. *)
let test_corpus_driven_browser_build () =
  let corpus = Runtime.Corpus.create () in
  let profile_session name page script =
    let env = ok (Pkru_safe.Env.create (Pkru_safe.Config.make Pkru_safe.Config.Profiling)) in
    let b = Browser.create env in
    Browser.load_page b page;
    ignore (Browser.exec_script b script);
    Runtime.Corpus.add_run corpus ~name (Pkru_safe.Env.recorded_profile env)
  in
  profile_session "attrs" {|<div data="x">a</div>|}
    {|var d = domQueryTag("div")[0]; domGetAttribute(d, "data").charCodeAt(0);|};
  profile_session "html" {|<div data="x">a</div>|}
    {|var d = domQueryTag("div")[0]; domGetInnerHTML(d).charCodeAt(0);|};
  (* Each session alone misses flows the other exercises; the merged
     corpus covers both. *)
  let merged = Runtime.Corpus.merged corpus in
  let env = ok (Pkru_safe.Env.create ~profile:merged (Pkru_safe.Config.make Pkru_safe.Config.Mpk)) in
  let b = Browser.create env in
  Browser.load_page b {|<div data="x">a</div>|};
  ignore
    (Browser.exec_script b
       {|var d = domQueryTag("div")[0];
print(domGetAttribute(d, "data"));
print(domGetInnerHTML(d));|});
  Alcotest.(check (list string)) "both flows usable" [ "x"; "a" ] (Browser.console b);
  (* The growth curve shows the second run contributed new sites. *)
  match Runtime.Corpus.marginal_gains corpus with
  | [ (_, first); (_, second) ] ->
    Alcotest.(check bool) "first run contributes" true (first > 0);
    Alcotest.(check bool) "second run adds the html flow" true (second > 0)
  | _ -> Alcotest.fail "two runs expected"

let suite =
  [
    Alcotest.test_case "merge + coverage" `Quick test_merge_and_coverage;
    Alcotest.test_case "fragile sites" `Quick test_fragile_sites;
    Alcotest.test_case "marginal gains" `Quick test_marginal_gains;
    Alcotest.test_case "duplicate rejected" `Quick test_duplicate_run_rejected;
    Alcotest.test_case "sampling" `Quick test_sampling;
    Alcotest.test_case "sampling deterministic under seed" `Quick
      test_sampling_deterministic_under_seed;
    Alcotest.test_case "save/load round-trip" `Quick test_save_load_roundtrip;
    Alcotest.test_case "corpus-driven browser build" `Quick test_corpus_driven_browser_build;
  ]
