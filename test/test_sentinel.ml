(* Tests for the bench regression sentinel: probe determinism, baseline
   round-trips, the comparison verdicts (cycle drift hard, wall-clock
   warn-only), and that the checked-in BENCH_BASELINE.json still matches
   this tree's deterministic cycles. *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
  nn = 0 || scan 0

let fresh = lazy (Workloads.Sentinel.run_probes ())

let test_probes_deterministic () =
  let a = Lazy.force fresh in
  let b = Workloads.Sentinel.run_probes () in
  Alcotest.(check (list string)) "probe names fixed" Workloads.Sentinel.probe_names
    (List.map (fun (r : Workloads.Sentinel.probe_result) -> r.Workloads.Sentinel.p_name) a);
  List.iter2
    (fun (x : Workloads.Sentinel.probe_result) (y : Workloads.Sentinel.probe_result) ->
      Alcotest.(check int)
        (x.Workloads.Sentinel.p_name ^ " cycles replay")
        x.Workloads.Sentinel.p_cycles y.Workloads.Sentinel.p_cycles;
      Alcotest.(check int)
        (x.Workloads.Sentinel.p_name ^ " transitions replay")
        x.Workloads.Sentinel.p_transitions y.Workloads.Sentinel.p_transitions)
    a b

let test_baseline_roundtrip () =
  let results = Lazy.force fresh in
  let json = Workloads.Sentinel.baseline_json ~commit:"deadbeef" results in
  let commit, back =
    Workloads.Sentinel.baseline_of_json (Util.Json.of_string (Util.Json.to_string json))
  in
  Alcotest.(check string) "commit survives" "deadbeef" commit;
  Alcotest.(check int) "probe count survives" (List.length results) (List.length back);
  List.iter2
    (fun (a : Workloads.Sentinel.probe_result) (b : Workloads.Sentinel.probe_result) ->
      Alcotest.(check string) "name" a.Workloads.Sentinel.p_name b.Workloads.Sentinel.p_name;
      Alcotest.(check int) "cycles" a.Workloads.Sentinel.p_cycles b.Workloads.Sentinel.p_cycles;
      Alcotest.(check int) "transitions" a.Workloads.Sentinel.p_transitions
        b.Workloads.Sentinel.p_transitions)
    results back;
  Alcotest.check_raises "wrong schema rejected"
    (Invalid_argument
       "Sentinel: baseline schema \"pkru-safe.bench-baseline/0\", this build expects \
        \"pkru-safe.bench-baseline/1\"")
    (fun () ->
      ignore
        (Workloads.Sentinel.baseline_of_json
           (Util.Json.Obj
              [
                ("schema", Util.Json.String "pkru-safe.bench-baseline/0");
                ("probes", Util.Json.List []);
              ])))

let test_clean_compare () =
  let results = Lazy.force fresh in
  let verdicts = Workloads.Sentinel.compare_results ~baseline:results results in
  Alcotest.(check bool) "no regression against itself" false
    (Workloads.Sentinel.has_regression verdicts);
  List.iter
    (fun (name, _, v) ->
      Alcotest.(check bool) (name ^ " matches") true (v = Workloads.Sentinel.Match))
    verdicts

(* An injected slowdown — the simulation suddenly charging more cycles —
   must be flagged as hard drift. *)
let test_injected_slowdown_flagged () =
  let results = Lazy.force fresh in
  let slowed =
    List.mapi
      (fun i (r : Workloads.Sentinel.probe_result) ->
        if i = 0 then { r with Workloads.Sentinel.p_cycles = r.Workloads.Sentinel.p_cycles + 137 }
        else r)
      results
  in
  let verdicts = Workloads.Sentinel.compare_results ~baseline:results slowed in
  Alcotest.(check bool) "regression detected" true (Workloads.Sentinel.has_regression verdicts);
  (match verdicts with
  | (_, _, Workloads.Sentinel.Cycle_drift { base_cycles; _ }) :: rest ->
    Alcotest.(check int) "baseline cycles reported"
      (List.hd results).Workloads.Sentinel.p_cycles base_cycles;
    List.iter
      (fun (name, _, v) ->
        Alcotest.(check bool) (name ^ " unaffected") true (v = Workloads.Sentinel.Match))
      rest
  | _ -> Alcotest.fail "expected Cycle_drift on the first probe");
  let rendered = Workloads.Sentinel.render_comparison ~commit:"test" verdicts in
  Alcotest.(check bool) "rendering flags the drift" true (contains rendered "DRIFT");
  Alcotest.(check bool) "rendering counts it" true (contains rendered "1 drift")

(* Host wall-clock slowdowns warn but never gate: machine-dependent. *)
let test_wall_slowdown_warns_only () =
  let results = Lazy.force fresh in
  let base =
    List.map (fun (r : Workloads.Sentinel.probe_result) -> { r with Workloads.Sentinel.p_wall_s = 0.1 }) results
  in
  let slow =
    List.map (fun (r : Workloads.Sentinel.probe_result) -> { r with Workloads.Sentinel.p_wall_s = 1.0 }) results
  in
  let verdicts = Workloads.Sentinel.compare_results ~baseline:base slow in
  Alcotest.(check bool) "wall slowdowns are not regressions" false
    (Workloads.Sentinel.has_regression verdicts);
  List.iter
    (fun (name, _, v) ->
      Alcotest.(check bool) (name ^ " warns") true
        (Workloads.Sentinel.is_warning v
        && match v with Workloads.Sentinel.Wall_slow _ -> true | _ -> false))
    verdicts;
  (* Under the 50ms absolute floor the same ratio stays silent. *)
  let tiny_base =
    List.map (fun (r : Workloads.Sentinel.probe_result) -> { r with Workloads.Sentinel.p_wall_s = 0.001 }) results
  in
  let tiny_slow =
    List.map (fun (r : Workloads.Sentinel.probe_result) -> { r with Workloads.Sentinel.p_wall_s = 0.01 }) results
  in
  List.iter
    (fun (name, _, v) ->
      Alcotest.(check bool) (name ^ " sub-floor noise ignored") true
        (v = Workloads.Sentinel.Match))
    (Workloads.Sentinel.compare_results ~baseline:tiny_base tiny_slow)

let test_missing_probes () =
  let results = Lazy.force fresh in
  let baseline = List.tl results in
  let verdicts = Workloads.Sentinel.compare_results ~baseline results in
  Alcotest.(check bool) "new probe warns only" false
    (Workloads.Sentinel.has_regression verdicts);
  (match List.assoc_opt
           (List.hd results).Workloads.Sentinel.p_name
           (List.map (fun (n, _, v) -> (n, v)) verdicts)
   with
  | Some Workloads.Sentinel.Missing_in_baseline -> ()
  | _ -> Alcotest.fail "expected Missing_in_baseline for the new probe");
  let verdicts = Workloads.Sentinel.compare_results ~baseline:results (List.tl results) in
  Alcotest.(check bool) "vanished probe is a regression" true
    (Workloads.Sentinel.has_regression verdicts);
  match List.assoc_opt
          (List.hd results).Workloads.Sentinel.p_name
          (List.map (fun (n, _, v) -> (n, v)) verdicts)
  with
  | Some Workloads.Sentinel.Missing_in_run -> ()
  | _ -> Alcotest.fail "expected Missing_in_run for the vanished probe"

(* The acceptance check: the checked-in baseline must compare clean on
   the deterministic dimensions for an unmodified tree.  Wall-clock
   verdicts are machine-dependent and ignored here. *)
let baseline_path () =
  List.find_opt Sys.file_exists
    [ "BENCH_BASELINE.json"; "../BENCH_BASELINE.json"; "../../BENCH_BASELINE.json" ]

let test_checked_in_baseline () =
  match baseline_path () with
  | None -> Alcotest.fail "BENCH_BASELINE.json not found (run bench --baseline-out)"
  | Some path ->
    let _, baseline =
      Workloads.Sentinel.baseline_of_json
        (Util.Json.of_string (In_channel.with_open_text path In_channel.input_all))
    in
    let verdicts = Workloads.Sentinel.compare_results ~baseline (Lazy.force fresh) in
    List.iter
      (fun (name, _, v) ->
        Alcotest.(check bool)
          (name ^ " cycles match the checked-in baseline")
          false
          (Workloads.Sentinel.is_regression v))
      verdicts

let suite =
  [
    Alcotest.test_case "probes are deterministic" `Quick test_probes_deterministic;
    Alcotest.test_case "baseline round-trips" `Quick test_baseline_roundtrip;
    Alcotest.test_case "self-compare is clean" `Quick test_clean_compare;
    Alcotest.test_case "injected slowdown is flagged" `Quick test_injected_slowdown_flagged;
    Alcotest.test_case "wall slowdown warns only" `Quick test_wall_slowdown_warns_only;
    Alcotest.test_case "missing probes" `Quick test_missing_probes;
    Alcotest.test_case "checked-in baseline compares clean" `Quick test_checked_in_baseline;
  ]
