(* Tests for the deterministic fault-injection harness and the
   enforcement-mode recovery policies end to end: the coverage-gap
   acceptance matrix, the cross-scenario invariants, determinism, and the
   bit-identity of Abort-policy runs with mitigator-less enforcement. *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
  nn = 0 || scan 0

let starts_with prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let run policy = Chaos.run ~scenario:Chaos.Coverage_gap ~policy ~seed:42 ()

let check_invariants (r : Chaos.report) =
  Alcotest.(check (list string))
    (Printf.sprintf "%s/%s invariants hold"
       (Chaos.scenario_to_string r.Chaos.scenario)
       (Runtime.Mitigator.policy_to_string r.Chaos.policy))
    [] r.Chaos.invariant_failures

(* The acceptance matrix: with 10% of the profile dropped, Abort dies like
   the seed, Emulate and Promote complete with incidents counted, Degrade
   fails the request gracefully. *)
let test_coverage_gap_abort () =
  let r = run Runtime.Mitigator.Abort in
  Alcotest.(check bool) "dies" false r.Chaos.completed;
  Alcotest.(check bool) "unresolved MPK fault" true
    (starts_with "unhandled-fault" r.Chaos.outcome && contains r.Chaos.outcome "SEGV_PKUERR");
  Alcotest.(check int) "no accounting" 0 r.Chaos.incidents;
  check_invariants r

let test_coverage_gap_emulate () =
  let r = run Runtime.Mitigator.Emulate in
  Alcotest.(check bool) "completes" true r.Chaos.completed;
  Alcotest.(check bool) "incidents counted" true (r.Chaos.incidents > 0);
  Alcotest.(check bool) "all incidents emulated" true
    (List.mem_assoc "emulated" r.Chaos.incident_outcomes);
  Alcotest.(check bool) "prometheus family carries the counts" true
    (contains r.Chaos.prometheus
       (Printf.sprintf "pkru_mitigation_total{outcome=\"emulated\",policy=\"emulate\"} %d"
          (List.assoc "emulated" r.Chaos.incident_outcomes)));
  check_invariants r

let test_coverage_gap_promote_converges () =
  let r = run Runtime.Mitigator.Promote in
  Alcotest.(check bool) "completes" true r.Chaos.completed;
  Alcotest.(check bool) "incidents counted" true (r.Chaos.incidents > 0);
  Alcotest.(check bool) "sites quarantined" true (r.Chaos.promoted_sites <> []);
  (match r.Chaos.rerun_incidents with
  | None -> Alcotest.fail "expected a rerun measurement"
  | Some rerun ->
    Alcotest.(check bool)
      (Printf.sprintf "rerun faults strictly less (%d < %d)" rerun r.Chaos.incidents)
      true
      (rerun < r.Chaos.incidents));
  check_invariants r

let test_coverage_gap_degrade () =
  let r = run Runtime.Mitigator.Degrade in
  Alcotest.(check bool) "dies gracefully" false r.Chaos.completed;
  Alcotest.(check bool) "degraded outcome" true (starts_with "degraded" r.Chaos.outcome);
  Alcotest.(check bool) "gate balance restored" true r.Chaos.gate_balanced;
  check_invariants r

let test_deterministic_replay () =
  let a = run Runtime.Mitigator.Promote in
  let b = run Runtime.Mitigator.Promote in
  Alcotest.(check string) "outcome replays" a.Chaos.outcome b.Chaos.outcome;
  Alcotest.(check int) "incidents replay" a.Chaos.incidents b.Chaos.incidents;
  Alcotest.(check (list string)) "promotions replay" a.Chaos.promoted_sites
    b.Chaos.promoted_sites;
  Alcotest.(check (list string)) "details replay" a.Chaos.details b.Chaos.details

(* Every scenario under every policy: whatever the injector does, the
   secret stays unreadable from U, graceful endings leave the gate
   balanced, and telemetry matches the mitigator's own books. *)
let test_all_scenarios_all_policies () =
  let reports = Chaos.run_all ~seed:1337 () in
  Alcotest.(check int) "full matrix ran"
    (List.length Chaos.all_scenarios * List.length Runtime.Mitigator.all_policies)
    (List.length reports);
  List.iter check_invariants reports;
  List.iter
    (fun (r : Chaos.report) -> Alcotest.(check bool) "secret intact" true r.Chaos.secret_intact)
    reports

(* Abort bit-identity: an enforcement run with the Abort-policy mitigator
   installed must be indistinguishable — cycles, transitions, event trace —
   from one with no mitigator at all (same shape as the TLB equivalence
   tests). *)
let trace_json sink =
  Util.Json.to_string
    (Util.Json.List (List.map Telemetry.Event.record_to_json (Telemetry.Sink.events sink)))

let test_abort_bit_identical () =
  let bench =
    Workloads.Bench_def.bench ~page:(Workloads.Dom_scripts.page ~rows:6) "abort-eq"
      (Workloads.Dom_scripts.dom_attr ~iters:12)
  in
  let suite = { Workloads.Bench_def.suite_name = "abort-eq"; benches = [ bench ] } in
  let profile = Workloads.Runner.profile_suite suite in
  let run mitigation =
    Workloads.Runner.run_config ?mitigation ~telemetry:true ~mode:Pkru_safe.Config.Mpk ~profile
      bench
  in
  let plain = run None in
  let abort = run (Some Runtime.Mitigator.Abort) in
  Alcotest.(check int) "cycles identical" plain.Workloads.Runner.cycles
    abort.Workloads.Runner.cycles;
  Alcotest.(check int) "transitions identical" plain.Workloads.Runner.transitions
    abort.Workloads.Runner.transitions;
  match (plain.Workloads.Runner.trace, abort.Workloads.Runner.trace) with
  | Some s_plain, Some s_abort ->
    Alcotest.(check int) "events_total identical" (Telemetry.Sink.events_total s_plain)
      (Telemetry.Sink.events_total s_abort);
    Alcotest.(check string) "event trace bit-identical" (trace_json s_plain)
      (trace_json s_abort);
    Alcotest.(check int) "no mitigation counters under Abort" 0
      (List.fold_left
         (fun acc (name, n) -> if starts_with "mitigation." name then acc + n else acc)
         0
         (Telemetry.Sink.counters s_abort))
  | _ -> Alcotest.fail "expected traces from both runs"

let test_report_json_shape () =
  let r = run Runtime.Mitigator.Emulate in
  let json = Util.Json.to_string (Chaos.report_to_json r) in
  List.iter
    (fun needle -> Alcotest.(check bool) ("json has " ^ needle) true (contains json needle))
    [ "\"scenario\""; "\"policy\""; "\"incidents\""; "\"secret_intact\""; "\"outcome\"" ]

(* The acceptance scenario for the flight recorder: a gate-PKRU
   corruption kill must leave a post-mortem whose causal span chain is
   still open at the corrupted transition, with the intended vs observed
   PKRU values in the details. *)
let test_gate_corruption_flight_dump () =
  let r = Chaos.run ~scenario:Chaos.Gate_corruption ~policy:Runtime.Mitigator.Abort ~seed:7 () in
  Alcotest.(check bool) "gate verify killed the run" true (starts_with "killed" r.Chaos.outcome);
  check_invariants r;
  match r.Chaos.flight_dumps with
  | [] -> Alcotest.fail "expected a flight dump from the gate kill"
  | dump :: _ ->
    Alcotest.(check string) "dump reason" "gate PKRU verification mismatch"
      (Util.Json.to_str (Util.Json.member "reason" dump));
    let details = Util.Json.member "details" dump in
    let intended = Util.Json.to_int (Util.Json.member "intended_pkru" details) in
    let observed = Util.Json.to_int (Util.Json.member "observed_pkru" details) in
    Alcotest.(check bool) "intended <> observed" true (intended <> observed);
    (* The open span chain names the corrupted transition: a gate-kind
       span under the chaos injection window. *)
    let opened =
      List.map Telemetry.Span.record_of_json
        (Util.Json.to_list
           (Util.Json.member "open" (Util.Json.member "spans" dump)))
    in
    Alcotest.(check bool) "a gate span is open at death" true
      (List.exists
         (fun (s : Telemetry.Span.record) ->
           s.Telemetry.Span.kind = Telemetry.Span.Gate
           && starts_with "gate:" s.Telemetry.Span.name)
         opened);
    Alcotest.(check bool) "the chaos window is open at death" true
      (List.exists
         (fun (s : Telemetry.Span.record) ->
           s.Telemetry.Span.kind = Telemetry.Span.Chaos
           && starts_with "chaos:gate-corruption" s.Telemetry.Span.name)
         opened);
    (* The doctor rendering of the same dump names the transition. *)
    let report = Telemetry.Flight.render dump in
    Alcotest.(check bool) "doctor names the corrupted transition" true
      (contains report "gate:");
    Alcotest.(check bool) "doctor shows the causal chain" true
      (contains report "causal chain open at death")

let suite =
  [
    Alcotest.test_case "coverage gap: abort dies like seed" `Quick test_coverage_gap_abort;
    Alcotest.test_case "coverage gap: emulate completes" `Quick test_coverage_gap_emulate;
    Alcotest.test_case "coverage gap: promote converges" `Quick
      test_coverage_gap_promote_converges;
    Alcotest.test_case "coverage gap: degrade graceful" `Quick test_coverage_gap_degrade;
    Alcotest.test_case "deterministic replay" `Quick test_deterministic_replay;
    Alcotest.test_case "all scenarios x policies" `Slow test_all_scenarios_all_policies;
    Alcotest.test_case "abort bit-identical to seed" `Quick test_abort_bit_identical;
    Alcotest.test_case "report json shape" `Quick test_report_json_shape;
    Alcotest.test_case "gate corruption leaves a flight dump" `Quick
      test_gate_corruption_flight_dump;
  ]
