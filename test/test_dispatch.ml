(* Differential tests for the fast engine tier: the threaded
   (closure-compiled) dispatcher with superinstructions and inline caches
   must simulate bit-identically to the reference bytecode interpreter —
   same cycles, same transitions, same telemetry event trace — on every
   workload kernel, with each optimisation layer on or off.  Also covers
   IC invalidation (object shape changes, DOM mutation between selector
   matches), the growable-buffer emitter's label targets, and the engine
   counter plumbing. *)

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.fail msg

let trace_json sink =
  Util.Json.to_string
    (Util.Json.List (List.map Telemetry.Event.record_to_json (Telemetry.Sink.events sink)))

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
  nn = 0 || scan 0

(* The kernel corpus: small instances of the dromaeo / octane / sunspider
   kernels (engine-bound) plus DOM-bound scripts further down. *)
let kernels =
  [
    ("fft", Workloads.Kernels.fft ~n:32);
    ("dft", Workloads.Kernels.dft ~n:16);
    ("oscillator", Workloads.Kernels.oscillator ~n:40 ~steps:3);
    ("blur", Workloads.Kernels.gaussian_blur ~w:8 ~h:6 ~passes:2);
    ("desaturate", Workloads.Kernels.desaturate ~pixels:150);
    ("jsonparse", Workloads.Kernels.json_parse_kernel ~rows:8);
    ("jsonstringify", Workloads.Kernels.json_stringify_kernel ~rows:8);
    ("aes", Workloads.Kernels.crypto_aes ~blocks:3 ~rounds:2);
    ("sha", Workloads.Kernels.crypto_sha ~iters:60);
    ("astar", Workloads.Kernels.astar ~w:9 ~h:7);
    ("richards", Workloads.Kernels.richards ~iterations:4);
    ("deltablue", Workloads.Kernels.deltablue ~chain:6 ~iters:4);
    ("splay", Workloads.Kernels.splay ~nodes:40 ~lookups:60);
    ("raytrace", Workloads.Kernels.raytrace ~w:8 ~h:6);
    ("navier", Workloads.Kernels.navier_stokes ~n:8 ~steps:2);
    ("codec", Workloads.Kernels.byte_codec ~name:"codec" ~bytes:200 ~rounds:3);
    ("regexp", Workloads.Kernels.regexp_scan ~copies:4);
    ("strings", Workloads.Kernels.string_kernel ~iters:30);
    ("earley", Workloads.Kernels.earley_boyer ~depth:4 ~iters:3);
    ("tokenizer", Workloads.Kernels.tokenizer ~copies:4);
  ]

type run_digest = {
  d_cycles : int;
  d_transitions : int;
  d_output : string list;
  d_trace : string;
  d_sink : Telemetry.Sink.t;
}

(* One measured run of [bench] under [mode] at the given engine tier,
   with the threaded layers configured by [opts]. *)
let measure ?opts ?(mode = Pkru_safe.Config.Base) ?profile ~tier bench =
  let profile = match profile with Some p -> p | None -> Runtime.Profile.create () in
  let go () =
    Workloads.Runner.run_config ~telemetry:true ~engine_tier:tier ~mode ~profile bench
  in
  let m = match opts with Some o -> Engine.Threaded.with_opts o go | None -> go () in
  match m.Workloads.Runner.trace with
  | None -> Alcotest.fail "expected a trace"
  | Some sink ->
    {
      d_cycles = m.Workloads.Runner.cycles;
      d_transitions = m.Workloads.Runner.transitions;
      d_output = m.Workloads.Runner.output;
      d_trace = trace_json sink;
      d_sink = sink;
    }

let check_bit_identical name (reference : run_digest) (candidate : run_digest) =
  Alcotest.(check (list string)) (name ^ ": output identical") reference.d_output
    candidate.d_output;
  Alcotest.(check int) (name ^ ": cycles identical") reference.d_cycles candidate.d_cycles;
  Alcotest.(check int)
    (name ^ ": transitions identical")
    reference.d_transitions candidate.d_transitions;
  Alcotest.(check string) (name ^ ": trace bit-identical") reference.d_trace candidate.d_trace

(* The headline differential: every kernel, four ways.  The AST tier must
   agree on results; the three bytecode variants (reference interpreter,
   threaded with every layer on, threaded with every layer off) must be
   bit-identical in cycles, transitions and event traces. *)
let test_kernel_equivalence () =
  List.iter
    (fun (name, src) ->
      let bench = Workloads.Bench_def.bench ("dispatch-" ^ name) src in
      let ast = measure ~tier:Engine.Ast_tier bench in
      let reference = measure ~tier:Engine.Bytecode_tier bench in
      let thr_on = measure ~tier:Engine.Threaded_tier ~opts:Engine.Threaded.all_on bench in
      let thr_off = measure ~tier:Engine.Threaded_tier ~opts:Engine.Threaded.all_off bench in
      Alcotest.(check (list string)) (name ^ ": ast output agrees") ast.d_output
        reference.d_output;
      check_bit_identical (name ^ " threaded/on") reference thr_on;
      check_bit_identical (name ^ " threaded/off") reference thr_off)
    kernels

(* Each IC layer alone must also be invisible (catches a layer whose
   charges only balance when another layer is active). *)
let test_single_layer_equivalence () =
  let bench =
    Workloads.Bench_def.bench "dispatch-layers" (Workloads.Kernels.richards ~iterations:4)
  in
  let reference = measure ~tier:Engine.Bytecode_tier bench in
  List.iter
    (fun (label, opts) ->
      let d = measure ~tier:Engine.Threaded_tier ~opts bench in
      check_bit_identical label reference d)
    [
      ("super only", { Engine.Threaded.all_off with superinstructions = true });
      ("var-ic only", { Engine.Threaded.all_off with var_ic = true });
      ("prop-ic only", { Engine.Threaded.all_off with prop_ic = true });
      ("batched only", { Engine.Threaded.all_off with batched_slots = true });
    ]

(* DOM-bound equivalence under enforcement: gate transitions and fault
   checks interleave with engine work; Mpk mode must stay bit-identical
   across dispatch variants, selector cache on or off. *)
let test_dom_equivalence () =
  let bench =
    Workloads.Bench_def.bench
      ~page:(Workloads.Dom_scripts.page ~rows:5)
      "dispatch-dom" (Workloads.Dom_scripts.jslib_select ~iters:8)
  in
  let suite = { Workloads.Bench_def.suite_name = "dispatch-dom"; benches = [ bench ] } in
  let profile = Workloads.Runner.profile_suite suite in
  let mode = Pkru_safe.Config.Mpk in
  let reference = measure ~tier:Engine.Bytecode_tier ~mode ~profile bench in
  let thr_on = measure ~tier:Engine.Threaded_tier ~opts:Engine.Threaded.all_on ~mode ~profile bench in
  check_bit_identical "dom mpk threaded" reference thr_on;
  Alcotest.(check bool) "selector cache hit during run" true
    (Telemetry.Sink.count thr_on.d_sink "engine_selector_hit" > 0);
  let uncached =
    Fun.protect
      ~finally:(fun () -> Browser.selector_cache_enabled := true)
      (fun () ->
        Browser.selector_cache_enabled := false;
        measure ~tier:Engine.Threaded_tier ~opts:Engine.Threaded.all_on ~mode ~profile bench)
  in
  check_bit_identical "selector cache off" reference uncached;
  Alcotest.(check int) "no cache hits when disabled" 0
    (Telemetry.Sink.count uncached.d_sink "engine_selector_hit")

(* Profiling mode exercises the fault + single-step path (every access
   faults and is single-stepped); the dispatch variants must not perturb
   it, and the profiles they produce must discover the same sites. *)
let test_profiling_equivalence () =
  let bench =
    Workloads.Bench_def.bench
      ~page:(Workloads.Dom_scripts.page ~rows:4)
      "dispatch-prof" (Workloads.Dom_scripts.dom_attr ~iters:6)
  in
  let suite = { Workloads.Bench_def.suite_name = "dispatch-prof"; benches = [ bench ] } in
  let profile = Workloads.Runner.profile_suite suite in
  let mode = Pkru_safe.Config.Profiling in
  let reference = measure ~tier:Engine.Bytecode_tier ~mode ~profile bench in
  let thr_on = measure ~tier:Engine.Threaded_tier ~opts:Engine.Threaded.all_on ~mode ~profile bench in
  check_bit_identical "profiling mode" reference thr_on;
  let sites tier =
    let p = Workloads.Runner.profile_bench ~engine_tier:tier bench in
    List.sort compare (List.map Runtime.Alloc_id.to_string (Runtime.Profile.sites p))
  in
  Alcotest.(check (list string)) "profiler discovers identical sites"
    (sites Engine.Bytecode_tier) (sites Engine.Threaded_tier)

(* --- IC invalidation --- *)

let fresh_engine ?(seed = 7) () =
  let env = ok (Pkru_safe.Env.create (Pkru_safe.Config.make Pkru_safe.Config.Base)) in
  Engine.create ~seed env

let eval_tier tier src =
  let e = fresh_engine () in
  let v = Engine.eval_string ~tier e src in
  (Engine.Value.to_display_string (Engine.heap e) v, Engine.take_output e)

let check_threaded_agrees name src =
  let ast_v, ast_out = eval_tier Engine.Ast_tier src in
  let thr_v, thr_out = eval_tier Engine.Threaded_tier src in
  Alcotest.(check string) (name ^ ": result") ast_v thr_v;
  Alcotest.(check (list string)) (name ^ ": output") ast_out thr_out

(* A property IC caches (shape, slot); adding a new property transitions
   the shape, so a stale cache entry must stop hitting. *)
let test_prop_ic_shape_invalidation () =
  check_threaded_agrees "shape transition mid-loop"
    "function get(o) { return o.x; }\n\
     var a = {x: 1};\n\
     var s = 0;\n\
     for (var i = 0; i < 20; i = i + 1) { s = s + get(a); }\n\
     a.y = 100;\n\
     s = s + get(a);\n\
     var b = {y: 2, x: 7};\n\
     s = s + get(b);\n\
     print(s); s;";
  (* Polymorphic then megamorphic: more shapes than pic entries. *)
  check_threaded_agrees "megamorphic site"
    "function get(o) { return o.v; }\n\
     var os = [{v:1},{a:0,v:2},{a:0,b:0,v:3},{a:0,b:0,c:0,v:4},{a:0,b:0,c:0,d:0,v:5},{e:0,v:6}];\n\
     var s = 0;\n\
     for (var i = 0; i < 30; i = i + 1) { s = s + get(os[i % 6]); }\n\
     print(s); s;";
  (* Writes through a cached store site after a transition. *)
  check_threaded_agrees "store after transition"
    "function set(o, v) { o.x = v; return o.x; }\n\
     var a = {x: 0};\n\
     var s = 0;\n\
     for (var i = 0; i < 10; i = i + 1) { s = s + set(a, i); }\n\
     a.z = 1;\n\
     s = s + set(a, 50);\n\
     print(s); s;"

(* The variable IC anchors on the parent scope chain and validates
   against per-scope declaration epochs: a declaration appearing between
   cached lookups must redirect the site. *)
let test_var_ic_decl_invalidation () =
  check_threaded_agrees "inner declaration shadows cached lookup"
    "var x = 1;\n\
     function probe() { return x; }\n\
     var s = probe();\n\
     x = 5;\n\
     s = s + probe();\n\
     print(s); s;";
  check_threaded_agrees "closure chains with distinct depths"
    "function mk(n) { return function(d) { return n + d; }; }\n\
     var f = mk(10); var g = mk(20);\n\
     var s = 0;\n\
     for (var i = 0; i < 12; i = i + 1) { s = s + f(i) + g(i); }\n\
     print(s); s;"

(* DOM mutation between selector matches: a compiled (cached) selector
   whose names were not interned at compile time must pick them up after
   createElement / setAttribute interns them. *)
let test_selector_dom_mutation () =
  let script =
    "var before = domQuery(\"widget\").length;\n\
     var beforeCls = domQuery(\".fresh\").length;\n\
     var el = domCreateElement(\"widget\");\n\
     domSetAttribute(el, \"class\", \"fresh\");\n\
     domAppendChild(domRoot(), el);\n\
     var after = domQuery(\"widget\").length;\n\
     var afterCls = domQuery(\".fresh\").length;\n\
     print(before + \":\" + beforeCls + \":\" + after + \":\" + afterCls);\n"
  in
  let run tier ~cache =
    Fun.protect
      ~finally:(fun () -> Browser.selector_cache_enabled := true)
      (fun () ->
        Browser.selector_cache_enabled := cache;
        let env = ok (Pkru_safe.Env.create (Pkru_safe.Config.make Pkru_safe.Config.Base)) in
        let b = Browser.create ~engine_seed:7 env in
        Browser.load_page b "<html><body><div id=\"main\">hi</div></body></html>";
        ignore (Browser.exec_script ~tier b script);
        Browser.console b)
  in
  let expected = [ "0:0:1:1" ] in
  Alcotest.(check (list string)) "ast, cached" expected (run Engine.Ast_tier ~cache:true);
  Alcotest.(check (list string)) "threaded, cached" expected
    (run Engine.Threaded_tier ~cache:true);
  Alcotest.(check (list string)) "threaded, uncached" expected
    (run Engine.Threaded_tier ~cache:false)

(* --- The growable-buffer emitter --- *)

(* Every jump in every kernel's compiled code (including lazily-compiled
   function bodies) must land inside its code object — the regression the
   old emit/assemble rewrite guards against — and compilation must be
   deterministic so the disassembly is stable. *)
let test_emitter_label_targets () =
  let parse src =
    let e = fresh_engine () in
    match Engine.Value.str_of_string (Engine.heap e) src with
    | Engine.Value.Str s -> Engine.Parser.parse (Engine.Lexer.tokenize (Engine.heap e) s)
    | _ -> assert false
  in
  let rec check_code name (code : Engine.Bytecode.instr array) =
    let n = Array.length code in
    Array.iter
      (fun instr ->
        let target =
          match instr with
          | Engine.Bytecode.Jump t
          | Engine.Bytecode.Jump_if_false t
          | Engine.Bytecode.Jump_if_false_peek t
          | Engine.Bytecode.Jump_if_true_peek t -> Some t
          | _ -> None
        in
        (match target with
        | Some t ->
          if t < 0 || t > n then
            Alcotest.failf "%s: jump target %d outside [0,%d]" name t n
        | None -> ());
        match instr with
        | Engine.Bytecode.Make_closure (_, body) ->
          check_code (name ^ "/closure") (Engine.Bytecode.compile_body body ~toplevel:false)
        | _ -> ())
      code
  in
  List.iter
    (fun (name, src) ->
      let ast = parse src in
      let p1 = Engine.Bytecode.compile ast in
      let p2 = Engine.Bytecode.compile ast in
      check_code name p1.Engine.Bytecode.top;
      Alcotest.(check string) (name ^ ": disassembly deterministic")
        (Engine.Bytecode.disassemble p1) (Engine.Bytecode.disassemble p2))
    kernels

(* Forward and backward jumps across a growth boundary: enough straight-
   line code to force several buffer doublings inside one loop body. *)
let test_emitter_growth_boundary () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "var s = 0;\nfor (var i = 0; i < 3; i = i + 1) {\n";
  for k = 1 to 120 do
    Buffer.add_string buf (Printf.sprintf "  s = s + %d;\n" k)
  done;
  Buffer.add_string buf "  if (s > 100000) { break; }\n}\ns;";
  let src = Buffer.contents buf in
  let ast_v, _ = eval_tier Engine.Ast_tier src in
  let bc_v, _ = eval_tier Engine.Bytecode_tier src in
  let thr_v, _ = eval_tier Engine.Threaded_tier src in
  Alcotest.(check string) "bytecode survives buffer growth" ast_v bc_v;
  Alcotest.(check string) "threaded survives buffer growth" ast_v thr_v

(* --- Counters --- *)

(* The runner injects IC / superinstruction / selector counters post-run;
   they must be live under the threaded tier and zero elsewhere. *)
let test_counters_injected () =
  let bench =
    Workloads.Bench_def.bench "dispatch-cnt" (Workloads.Kernels.richards ~iterations:4)
  in
  let thr = measure ~tier:Engine.Threaded_tier ~opts:Engine.Threaded.all_on bench in
  let count name = Telemetry.Sink.count thr.d_sink name in
  Alcotest.(check bool) "var IC hits" true (count "engine_var_ic_hit" > 0);
  Alcotest.(check bool) "prop IC hits" true (count "engine_prop_ic_hit" > 0);
  Alcotest.(check bool) "superinstructions executed" true (count "engine_super_exec" > 0);
  let reference = measure ~tier:Engine.Bytecode_tier bench in
  List.iter
    (fun name ->
      Alcotest.(check int) (name ^ " zero on reference tier") 0
        (Telemetry.Sink.count reference.d_sink name))
    [
      "engine_var_ic_hit"; "engine_var_ic_miss"; "engine_prop_ic_hit";
      "engine_prop_ic_miss"; "engine_super_exec"; "engine_selector_hit";
      "engine_selector_miss";
    ];
  (* The summary JSON digest (bench --json) carries the IC counters. *)
  Alcotest.(check bool) "summary_json carries IC digests" true
    (contains
       (Util.Json.to_string (Telemetry.Export.summary_json thr.d_sink))
       "engine_var_ic_hit")

(* The pkru_engine_* Prometheus families: always exposed (zero cells
   outside the fast tier), populated from the runner-injected sink
   counters. *)
let test_prometheus_engine_families () =
  let empty = Telemetry.Export.prometheus (Telemetry.Sink.create ()) in
  List.iter
    (fun family ->
      Alcotest.(check bool) (family ^ " exposed at zero") true
        (contains empty (family ^ " 0")))
    [
      "pkru_engine_var_ic_hits_total"; "pkru_engine_var_ic_misses_total";
      "pkru_engine_prop_ic_hits_total"; "pkru_engine_prop_ic_misses_total";
      "pkru_engine_superinstructions_total"; "pkru_engine_selector_hits_total";
      "pkru_engine_selector_misses_total";
    ];
  let bench =
    Workloads.Bench_def.bench "dispatch-prom" (Workloads.Kernels.richards ~iterations:4)
  in
  let thr = measure ~tier:Engine.Threaded_tier ~opts:Engine.Threaded.all_on bench in
  let text = Telemetry.Export.prometheus thr.d_sink in
  let expect family sink_counter =
    Alcotest.(check bool) (family ^ " populated from sink") true
      (contains text
         (Printf.sprintf "%s %d" family (Telemetry.Sink.count thr.d_sink sink_counter)))
  in
  expect "pkru_engine_var_ic_hits_total" "engine_var_ic_hit";
  expect "pkru_engine_prop_ic_hits_total" "engine_prop_ic_hit";
  expect "pkru_engine_superinstructions_total" "engine_super_exec"

(* Opcode profiling: adjacent-pair counts cover the fused pairs that the
   superinstruction set is built from. *)
let test_opstats_pairs () =
  let e = fresh_engine () in
  let st, _ =
    Engine.Opstats.collect (fun () ->
        Engine.eval_string ~tier:Engine.Bytecode_tier e
          "var s = 0; var t = 0;\n\
           for (var i = 0; i < 50; i = i + 1) { s = s + i; t = t + s; }\n\
           s + t;")
  in
  Alcotest.(check bool) "instructions counted" true (Engine.Opstats.total st > 0);
  let singles = Engine.Opstats.singles st in
  Alcotest.(check bool) "load counted" true (List.mem_assoc "load" singles);
  let pairs = Engine.Opstats.pairs st in
  Alcotest.(check bool) "load,load pair seen" true
    (List.exists (fun ((a, b), _) -> a = "load" && b = "load") pairs);
  let rendered = Engine.Opstats.render st in
  Alcotest.(check bool) "render names opcodes" true (contains rendered "load");
  Alcotest.(check bool) "json has pairs" true
    (contains (Util.Json.to_string (Engine.Opstats.to_json st)) "\"pairs\"")

let suite =
  [
    Alcotest.test_case "kernels: 4-way equivalence" `Quick test_kernel_equivalence;
    Alcotest.test_case "single-layer equivalence" `Quick test_single_layer_equivalence;
    Alcotest.test_case "dom equivalence (mpk + selector cache)" `Quick test_dom_equivalence;
    Alcotest.test_case "profiling-mode equivalence" `Quick test_profiling_equivalence;
    Alcotest.test_case "prop IC shape invalidation" `Quick test_prop_ic_shape_invalidation;
    Alcotest.test_case "var IC declaration invalidation" `Quick test_var_ic_decl_invalidation;
    Alcotest.test_case "selector IC after DOM mutation" `Quick test_selector_dom_mutation;
    Alcotest.test_case "emitter: label targets in bounds" `Quick test_emitter_label_targets;
    Alcotest.test_case "emitter: growth boundary" `Quick test_emitter_growth_boundary;
    Alcotest.test_case "counters injected + digests" `Quick test_counters_injected;
    Alcotest.test_case "prometheus pkru_engine_* families" `Quick
      test_prometheus_engine_families;
    Alcotest.test_case "opcode pair profiling" `Quick test_opstats_pairs;
  ]
