(* Tests for the cross-compartment provenance auditor: a planted MT
   pointer in U-visible memory is attributed to exactly its allocation
   site (interior pointers included, dangling values excluded), seed
   workloads come back leak-free, promotion routes confirmed-leaking
   sites to MU, and the chaos harness carries the audit as an invariant. *)

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.fail msg

(* An enforcement env with an empty profile: nothing moves to MU, so an
   Env.alloc lands in MT — the leak we plant. *)
let leak_env () =
  let env = ok (Pkru_safe.Env.create (Pkru_safe.Config.make Pkru_safe.Config.Mpk)) in
  Pkru_safe.Env.track_census env;
  env

let scan env =
  Audit.scan
    ~metadata:(Option.get (Pkru_safe.Env.census_metadata env))
    (Pkru_safe.Env.pkalloc env)

let test_planted_leak_attributed () =
  let env = leak_env () in
  let machine = Pkru_safe.Env.machine env in
  let pkalloc = Pkru_safe.Env.pkalloc env in
  let site = Runtime.Alloc_id.make ~func_id:7 ~block_id:3 ~call_id:1 in
  let mt_addr = Pkru_safe.Env.alloc env ~site 64 in
  Alcotest.(check bool) "planted object lives in MT" true
    (Allocators.Pkalloc.pool_of_addr pkalloc mt_addr = Some `Trusted);
  (* Clean slate: before anything is written, U reaches nothing. *)
  Alcotest.(check bool) "leak-free before the plant" true (Audit.leak_free (scan env));
  let mu_buf = Pkru_safe.Env.malloc_untrusted env 64 in
  (* Base pointer and an interior pointer into the same object. *)
  Sim.Machine.priv_write_u64 machine mu_buf mt_addr;
  Sim.Machine.priv_write_u64 machine (mu_buf + 8) (mt_addr + 16);
  (* A dangling value: a freed MT object is not a leak. *)
  let dead_site = Runtime.Alloc_id.make ~func_id:7 ~block_id:3 ~call_id:2 in
  let dead = Pkru_safe.Env.alloc env ~site:dead_site 32 in
  Sim.Machine.priv_write_u64 machine (mu_buf + 16) dead;
  Pkru_safe.Env.dealloc env dead;
  let report = scan env in
  Alcotest.(check bool) "leak detected" false (Audit.leak_free report);
  Alcotest.(check int) "two pointer words found" 2 (List.length report.Audit.findings);
  Alcotest.(check int) "exactly one leaking site" 1 (List.length report.Audit.sites);
  let s = List.hd report.Audit.sites in
  Alcotest.(check string) "attributed to the planted site"
    (Runtime.Alloc_id.to_string site) s.Audit.s_site;
  Alcotest.(check int) "one distinct object" 1 s.Audit.s_objects;
  Alcotest.(check int) "two referencing words" 2 s.Audit.s_refs;
  Alcotest.(check int) "leaked bytes = object size" 64 s.Audit.s_bytes;
  List.iter
    (fun (f : Audit.finding) ->
      Alcotest.(check int) "finding base" mt_addr f.Audit.f_obj_base;
      Alcotest.(check bool) "pointer word lies in the MU buffer" true
        (f.Audit.f_ptr_addr >= mu_buf && f.Audit.f_ptr_addr < mu_buf + 64))
    report.Audit.findings;
  (* An untraced run corroborates nothing: the leak is latent. *)
  let attr = Telemetry.Attribution.of_sink (Telemetry.Sink.create ()) in
  Alcotest.(check bool) "uncorroborated by an empty trace" true
    (Audit.corroborate report attr = [ (Runtime.Alloc_id.to_string site, false) ])

let test_promote_routes_future_allocs_to_mu () =
  let env = leak_env () in
  let machine = Pkru_safe.Env.machine env in
  let pkalloc = Pkru_safe.Env.pkalloc env in
  let site = Runtime.Alloc_id.make ~func_id:9 ~block_id:1 ~call_id:4 in
  let mt_addr = Pkru_safe.Env.alloc env ~site 48 in
  let mu_buf = Pkru_safe.Env.malloc_untrusted env 16 in
  Sim.Machine.priv_write_u64 machine mu_buf mt_addr;
  let report = scan env in
  let promoted = Audit.promote pkalloc report in
  Alcotest.(check (list string)) "leaking site quarantined"
    [ Runtime.Alloc_id.to_string site ]
    promoted;
  Alcotest.(check bool) "site-override table updated" true
    (Allocators.Pkalloc.site_quarantined pkalloc (Runtime.Alloc_id.to_string site));
  (* Future allocations from the site are served from MU; the live object
     keeps its pool (the provenance invariant). *)
  let fresh = Pkru_safe.Env.alloc env ~site 48 in
  Alcotest.(check bool) "future allocation lands in MU" true
    (Allocators.Pkalloc.pool_of_addr pkalloc fresh = Some `Untrusted);
  Alcotest.(check bool) "existing object stays in MT" true
    (Allocators.Pkalloc.pool_of_addr pkalloc mt_addr = Some `Trusted);
  Alcotest.(check (list string)) "re-promotion is a no-op" []
    (Audit.promote pkalloc report);
  (* Convergence on a fresh image carrying the quarantine: the same
     allocation now starts in MU, so the scan comes back leak-free. *)
  let env2 = leak_env () in
  let pkalloc2 = Pkru_safe.Env.pkalloc env2 in
  List.iter
    (Allocators.Pkalloc.quarantine_site pkalloc2)
    (Allocators.Pkalloc.quarantined_sites pkalloc);
  let addr2 = Pkru_safe.Env.alloc env2 ~site 48 in
  let mu_buf2 = Pkru_safe.Env.malloc_untrusted env2 16 in
  Sim.Machine.priv_write_u64 (Pkru_safe.Env.machine env2) mu_buf2 addr2;
  Alcotest.(check bool) "converged image is leak-free" true (Audit.leak_free (scan env2))

(* No false positives: seed workloads, run end to end under enforcement
   with their real profiles, must come back leak-free. *)
let test_seed_workloads_leak_free () =
  let benches =
    [
      Workloads.Bench_def.bench ~page:(Workloads.Dom_scripts.page ~rows:4) "audit-dom-attr"
        (Workloads.Dom_scripts.dom_attr ~iters:8);
      Workloads.Bench_def.bench ~page:(Workloads.Dom_scripts.page ~rows:4) "audit-dom-create"
        (Workloads.Dom_scripts.dom_create ~iters:6);
      Workloads.Bench_def.bench "audit-richards" (Workloads.Kernels.richards ~iterations:12);
      Workloads.Bench_def.bench "audit-fft" (Workloads.Kernels.fft ~n:64);
    ]
  in
  List.iter
    (fun (bench : Workloads.Bench_def.bench) ->
      let profile =
        Workloads.Runner.profile_suite
          { Workloads.Bench_def.suite_name = "audit"; benches = [ bench ] }
      in
      let env =
        ok (Pkru_safe.Env.create ~profile (Pkru_safe.Config.make Pkru_safe.Config.Mpk))
      in
      Pkru_safe.Env.track_census env;
      let browser = Browser.create ~engine_seed:bench.Workloads.Bench_def.engine_seed env in
      Browser.load_page browser bench.Workloads.Bench_def.page;
      ignore (Browser.exec_script browser bench.Workloads.Bench_def.script);
      let report = scan env in
      Alcotest.(check bool)
        (bench.Workloads.Bench_def.name ^ " scans pages")
        true
        (report.Audit.scanned_pages > 0);
      Alcotest.(check bool)
        (bench.Workloads.Bench_def.name ^ " leak-free")
        true (Audit.leak_free report))
    benches

(* The scan itself is architecturally invisible: machine cycles and the
   demand-fault count are unchanged by running it. *)
let test_scan_is_pure () =
  let env = leak_env () in
  let site = Runtime.Alloc_id.make ~func_id:2 ~block_id:2 ~call_id:2 in
  let _ = Pkru_safe.Env.alloc env ~site 64 in
  let machine = Pkru_safe.Env.machine env in
  let cycles_before = Sim.Machine.cycles machine in
  let r1 = scan env in
  let r2 = scan env in
  Alcotest.(check int) "no cycles charged" cycles_before (Sim.Machine.cycles machine);
  Alcotest.(check bool) "deterministic" true (r1 = r2)

let test_report_renders () =
  let env = leak_env () in
  let machine = Pkru_safe.Env.machine env in
  let site = Runtime.Alloc_id.make ~func_id:5 ~block_id:0 ~call_id:9 in
  let mt_addr = Pkru_safe.Env.alloc env ~site 32 in
  let mu_buf = Pkru_safe.Env.malloc_untrusted env 16 in
  Sim.Machine.priv_write_u64 machine mu_buf mt_addr;
  let report = scan env in
  let parsed = Util.Json.of_string (Util.Json.to_string (Audit.to_json report)) in
  Alcotest.(check int) "findings_total" 1
    (Util.Json.to_int (Util.Json.member "findings_total" parsed));
  Alcotest.(check bool) "leak_free field" false
    (match Util.Json.member "leak_free" parsed with
    | Util.Json.Bool b -> b
    | _ -> Alcotest.fail "leak_free not a bool");
  let contains haystack needle =
    let nl = String.length needle and hl = String.length haystack in
    let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "render names the site" true
    (contains (Audit.render report) (Runtime.Alloc_id.to_string site));
  Alcotest.(check bool) "prometheus exports findings" true
    (contains (Audit.prometheus report) "pkru_audit_findings_total")

(* The chaos harness carries "no MT object reachable from U" as an
   invariant: a fully-profiled scenario must report a leak-free audit. *)
let test_chaos_carries_audit_invariant () =
  let r =
    Chaos.run ~scenario:Chaos.Pkalloc_oom ~policy:Runtime.Mitigator.Emulate ~seed:3 ()
  in
  Alcotest.(check bool) "audit leak-free" true r.Chaos.audit_leak_free;
  Alcotest.(check (list (pair string int))) "no audit findings" [] r.Chaos.audit_findings;
  Alcotest.(check (list string)) "invariants hold" [] r.Chaos.invariant_failures

let suite =
  [
    Alcotest.test_case "planted leak attributed to its site" `Quick
      test_planted_leak_attributed;
    Alcotest.test_case "promote routes future allocs to MU" `Quick
      test_promote_routes_future_allocs_to_mu;
    Alcotest.test_case "seed workloads leak-free" `Quick test_seed_workloads_leak_free;
    Alcotest.test_case "scan is pure" `Quick test_scan_is_pure;
    Alcotest.test_case "report renders" `Quick test_report_renders;
    Alcotest.test_case "chaos carries audit invariant" `Quick
      test_chaos_carries_audit_invariant;
  ]
