(* Tests for the simulated machine: checked accesses, MPK enforcement,
   signal chaining and the single-step (trap flag) mechanism. *)

let page = Vmm.Layout.page_size
let key = Mpk.Pkey.of_int

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.fail msg

(* A machine with one RW region at [base] tagged with pkey 1. *)
let machine_with_region ?(pkey = key 1) ?(pages = 4) ~base () =
  let m = Sim.Machine.create () in
  ok (Vmm.Page_table.reserve m.Sim.Machine.page_table ~base ~size:(pages * page)
        ~prot:Vmm.Prot.read_write ~pkey);
  m

let base = 0x10_0000

let test_rw_roundtrip_widths () =
  let m = machine_with_region ~pkey:(key 0) ~base () in
  Sim.Machine.write_u8 m base 0xAB;
  Sim.Machine.write_u16 m (base + 8) 0xBEEF;
  Sim.Machine.write_u32 m (base + 16) 0xDEADBEEF;
  Sim.Machine.write_u64 m (base + 24) 0x1234_5678_9ABC;
  Alcotest.(check int) "u8" 0xAB (Sim.Machine.read_u8 m base);
  Alcotest.(check int) "u16" 0xBEEF (Sim.Machine.read_u16 m (base + 8));
  Alcotest.(check int) "u32" 0xDEADBEEF (Sim.Machine.read_u32 m (base + 16));
  Alcotest.(check int) "u64" 0x1234_5678_9ABC (Sim.Machine.read_u64 m (base + 24))

let test_straddling_access () =
  let m = machine_with_region ~pkey:(key 0) ~base () in
  let addr = base + page - 3 in
  Sim.Machine.write_u64 m addr 0x0102_0304_0506_0708;
  Alcotest.(check int) "straddle round-trip" 0x0102_0304_0506_0708 (Sim.Machine.read_u64 m addr);
  Alcotest.(check int) "low byte" 0x08 (Sim.Machine.read_u8 m addr);
  Alcotest.(check int) "crossing byte" 0x05 (Sim.Machine.read_u8 m (addr + 3))

let test_f64_roundtrip () =
  let m = machine_with_region ~pkey:(key 0) ~base () in
  List.iter
    (fun f ->
      Sim.Machine.write_f64 m base f;
      Alcotest.(check (float 0.0)) "f64" f (Sim.Machine.read_f64 m base))
    [ 0.0; 1.5; -3.25; 1e300; -1e-300; Float.max_float ]

let prop_f64_roundtrip =
  QCheck.Test.make ~count:300 ~name:"f64 machine round-trip" QCheck.float (fun f ->
      let m = machine_with_region ~pkey:(key 0) ~base () in
      Sim.Machine.write_f64 m base f;
      let f' = Sim.Machine.read_f64 m base in
      Int64.bits_of_float f = Int64.bits_of_float f')

let test_bytes_helpers () =
  let m = machine_with_region ~pkey:(key 0) ~base () in
  Sim.Machine.write_string m base "hello, pkru";
  Alcotest.(check string) "string round-trip" "hello, pkru"
    (Bytes.to_string (Sim.Machine.read_bytes m base 11));
  Sim.Machine.memset m base 'z' 5;
  Alcotest.(check string) "memset" "zzzzz, pkru" (Bytes.to_string (Sim.Machine.read_bytes m base 11))

let test_unmapped_faults () =
  let m = Sim.Machine.create () in
  (match Sim.Machine.read_u8 m 0xdead000 with
  | exception Vmm.Fault.Unhandled f ->
    Alcotest.(check bool) "maperr" true (f.Vmm.Fault.kind = Vmm.Fault.Not_mapped)
  | _ -> Alcotest.fail "expected fault")

let test_prot_violation () =
  let m = Sim.Machine.create () in
  ok (Vmm.Page_table.reserve m.Sim.Machine.page_table ~base ~size:page ~prot:Vmm.Prot.read_only
        ~pkey:(key 0));
  ignore (Sim.Machine.read_u8 m base);
  match Sim.Machine.write_u8 m base 1 with
  | exception Vmm.Fault.Unhandled f ->
    Alcotest.(check bool) "accerr" true (f.Vmm.Fault.kind = Vmm.Fault.Prot_violation)
  | _ -> Alcotest.fail "expected fault"

let test_pkey_enforcement () =
  let m = machine_with_region ~base () in
  (* pkey 1 region; PKRU initially allows everything. *)
  Sim.Machine.write_u64 m base 42;
  (* Drop access to key 1: both read and write must fault. *)
  m.Sim.Machine.cpu.Sim.Cpu.pkru <- Mpk.Pkru.all_disabled_except [];
  (match Sim.Machine.read_u64 m base with
  | exception Vmm.Fault.Unhandled { Vmm.Fault.kind = Vmm.Fault.Pkey_violation k; _ } ->
    Alcotest.(check int) "key" 1 (Mpk.Pkey.to_int k)
  | _ -> Alcotest.fail "read should fault");
  (* Write-disable only: read succeeds, write faults. *)
  m.Sim.Machine.cpu.Sim.Cpu.pkru <-
    Mpk.Pkru.set_rights Mpk.Pkru.all_enabled (key 1) Mpk.Pkru.Disable_write;
  Alcotest.(check int) "read-only read" 42 (Sim.Machine.read_u64 m base);
  match Sim.Machine.write_u64 m base 7 with
  | exception Vmm.Fault.Unhandled { Vmm.Fault.kind = Vmm.Fault.Pkey_violation _; _ } -> ()
  | _ -> Alcotest.fail "write should fault"

let test_probe_does_not_fault_or_charge () =
  let m = machine_with_region ~base () in
  m.Sim.Machine.cpu.Sim.Cpu.pkru <- Mpk.Pkru.all_disabled_except [];
  ignore (Vmm.Page_table.lookup m.Sim.Machine.page_table base);
  let before = Sim.Machine.cycles m in
  Alcotest.(check bool) "denied" true
    (Sim.Machine.probe m Vmm.Fault.Read base = Some (Vmm.Fault.Pkey_violation (key 1)));
  Alcotest.(check bool) "unmapped probe" true
    (Sim.Machine.probe m Vmm.Fault.Read 0xdd000 = Some Vmm.Fault.Not_mapped);
  Alcotest.(check int) "no cycles charged" before (Sim.Machine.cycles m)

let test_handler_retry_semantics () =
  let m = machine_with_region ~base () in
  Sim.Machine.write_u64 m base 99;
  m.Sim.Machine.cpu.Sim.Cpu.pkru <- Mpk.Pkru.all_disabled_except [];
  let seen = ref [] in
  Sim.Signals.register_segv m.Sim.Machine.signals (fun f ->
      seen := f :: !seen;
      (* Fix up PKRU so the retried access succeeds. *)
      m.Sim.Machine.cpu.Sim.Cpu.pkru <- Mpk.Pkru.all_enabled;
      Sim.Signals.Retry);
  Alcotest.(check int) "access retried after fixup" 99 (Sim.Machine.read_u64 m base);
  Alcotest.(check int) "handler ran once" 1 (List.length !seen)

let test_handler_chain_pass () =
  let m = machine_with_region ~base () in
  m.Sim.Machine.cpu.Sim.Cpu.pkru <- Mpk.Pkru.all_disabled_except [];
  let first_ran = ref false in
  let second_ran = ref false in
  (* Registered first = application handler; runs last. *)
  Sim.Signals.register_segv m.Sim.Machine.signals (fun _ ->
      first_ran := true;
      m.Sim.Machine.cpu.Sim.Cpu.pkru <- Mpk.Pkru.all_enabled;
      Sim.Signals.Retry);
  (* Registered second = profiler; sees the fault first, passes non-MPK. *)
  Sim.Signals.register_segv m.Sim.Machine.signals (fun f ->
      second_ran := true;
      match f.Vmm.Fault.kind with
      | Vmm.Fault.Pkey_violation _ -> Sim.Signals.Pass
      | _ -> Sim.Signals.Pass);
  ignore (Sim.Machine.read_u8 m base);
  Alcotest.(check bool) "late handler first" true !second_ran;
  Alcotest.(check bool) "passed to earlier handler" true !first_ran

let test_handler_kill () =
  let m = machine_with_region ~base () in
  m.Sim.Machine.cpu.Sim.Cpu.pkru <- Mpk.Pkru.all_disabled_except [];
  Sim.Signals.register_segv m.Sim.Machine.signals (fun _ -> Sim.Signals.Kill "policy violation");
  match Sim.Machine.read_u8 m base with
  | exception Sim.Signals.Process_killed msg ->
    Alcotest.(check string) "message" "policy violation" msg
  | _ -> Alcotest.fail "expected kill"

(* With three handlers installed, the chain runs newest-first; Pass moves
   to the next-older handler and the oldest one's Kill wins.  The
   traversal order is what the mitigator/profiler stacking relies on. *)
let test_handler_chain_kill_order () =
  let m = machine_with_region ~base () in
  m.Sim.Machine.cpu.Sim.Cpu.pkru <- Mpk.Pkru.all_disabled_except [];
  let order = ref [] in
  let passer name _ =
    order := name :: !order;
    Sim.Signals.Pass
  in
  Sim.Signals.register_segv m.Sim.Machine.signals (fun _ ->
      order := "app" :: !order;
      Sim.Signals.Kill "app enforcement");
  Sim.Signals.register_segv m.Sim.Machine.signals (passer "middle");
  Sim.Signals.register_segv m.Sim.Machine.signals (passer "late");
  (match Sim.Machine.read_u8 m base with
  | exception Sim.Signals.Process_killed msg ->
    Alcotest.(check string) "kill message" "app enforcement" msg
  | _ -> Alcotest.fail "expected the earliest handler's Kill");
  Alcotest.(check (list string)) "reverse registration order" [ "late"; "middle"; "app" ]
    (List.rev !order)

let test_unregister_segv_pops_newest () =
  let m = machine_with_region ~base () in
  m.Sim.Machine.cpu.Sim.Cpu.pkru <- Mpk.Pkru.all_disabled_except [];
  let late_ran = ref false in
  Sim.Signals.register_segv m.Sim.Machine.signals (fun _ -> Sim.Signals.Kill "early");
  Sim.Signals.register_segv m.Sim.Machine.signals (fun _ ->
      late_ran := true;
      Sim.Signals.Kill "late");
  Alcotest.(check int) "two installed" 2
    (Sim.Signals.segv_handler_count m.Sim.Machine.signals);
  Alcotest.(check bool) "unregister pops" true
    (Sim.Signals.unregister_segv m.Sim.Machine.signals);
  (match Sim.Machine.read_u8 m base with
  | exception Sim.Signals.Process_killed msg -> Alcotest.(check string) "early wins" "early" msg
  | _ -> Alcotest.fail "expected kill");
  Alcotest.(check bool) "popped handler never ran" false !late_ran;
  Alcotest.(check bool) "pop remaining" true
    (Sim.Signals.unregister_segv m.Sim.Machine.signals);
  Alcotest.(check bool) "empty chain refuses" false
    (Sim.Signals.unregister_segv m.Sim.Machine.signals)

let test_reorder_segv_chain () =
  let m = machine_with_region ~base () in
  m.Sim.Machine.cpu.Sim.Cpu.pkru <- Mpk.Pkru.all_disabled_except [];
  let order = ref [] in
  let tracer name verdict _ =
    order := name :: !order;
    verdict
  in
  Sim.Signals.register_segv m.Sim.Machine.signals (tracer "a" (Sim.Signals.Kill "a"));
  Sim.Signals.register_segv m.Sim.Machine.signals (tracer "b" Sim.Signals.Pass);
  (* Head is b; reversing makes a (the Kill) run first. *)
  Sim.Signals.reorder_segv m.Sim.Machine.signals List.rev;
  (match Sim.Machine.read_u8 m base with
  | exception Sim.Signals.Process_killed _ -> ()
  | _ -> Alcotest.fail "expected kill");
  Alcotest.(check (list string)) "reordered traversal" [ "a" ] (List.rev !order)

let test_last_fault_recorded () =
  let m = machine_with_region ~base () in
  Alcotest.(check bool) "no fault yet" true (Sim.Signals.last_fault m.Sim.Machine.signals = None);
  m.Sim.Machine.cpu.Sim.Cpu.pkru <- Mpk.Pkru.all_disabled_except [];
  Sim.Signals.register_segv m.Sim.Machine.signals (fun _ ->
      m.Sim.Machine.cpu.Sim.Cpu.pkru <- Mpk.Pkru.all_enabled;
      Sim.Signals.Retry);
  ignore (Sim.Machine.read_u8 m (base + 24));
  match Sim.Signals.last_fault m.Sim.Machine.signals with
  | Some (f, hart) ->
    Alcotest.(check int) "fault address kept" (base + 24) f.Vmm.Fault.addr;
    Alcotest.(check int) "faulting hart recorded" m.Sim.Machine.cpu.Sim.Cpu.id hart
  | None -> Alcotest.fail "expected last_fault to be recorded"

(* SIGTRAP with an empty handler chain is fatal, and the kill message
   carries the debugging context: chain depth and the last SEGV. *)
let test_trap_without_handler_reports_context () =
  let m = machine_with_region ~base () in
  m.Sim.Machine.cpu.Sim.Cpu.pkru <- Mpk.Pkru.all_disabled_except [];
  Sim.Signals.register_segv m.Sim.Machine.signals (fun _ ->
      m.Sim.Machine.cpu.Sim.Cpu.pkru <- Mpk.Pkru.all_enabled;
      m.Sim.Machine.cpu.Sim.Cpu.trap_flag <- true;
      Sim.Signals.Retry);
  match Sim.Machine.read_u8 m base with
  | exception Sim.Signals.Process_killed msg ->
    let contains needle =
      let nh = String.length msg and nn = String.length needle in
      let rec scan i = i + nn <= nh && (String.sub msg i nn = needle || scan (i + 1)) in
      scan 0
    in
    Alcotest.(check bool) "mentions chain depth" true
      (contains "segv handler chain depth 1");
    Alcotest.(check bool) "mentions the faulting access" true (contains "SEGV_PKUERR")
  | _ -> Alcotest.fail "expected SIGTRAP with no handler to kill the process"

let test_single_step_trap () =
  let m = machine_with_region ~base () in
  Sim.Machine.write_u64 m base 7;
  let restricted = Mpk.Pkru.all_disabled_except [] in
  m.Sim.Machine.cpu.Sim.Cpu.pkru <- restricted;
  let trap_fired = ref false in
  Sim.Signals.register_trap m.Sim.Machine.signals (fun () ->
      trap_fired := true;
      (* Restore the restricted view, like the profiler's SIGTRAP handler. *)
      m.Sim.Machine.cpu.Sim.Cpu.pkru <- restricted);
  Sim.Signals.register_segv m.Sim.Machine.signals (fun f ->
      match f.Vmm.Fault.kind with
      | Vmm.Fault.Pkey_violation _ ->
        (* Temporarily open the compartment and single-step the access. *)
        m.Sim.Machine.cpu.Sim.Cpu.pkru <- Mpk.Pkru.all_enabled;
        m.Sim.Machine.cpu.Sim.Cpu.trap_flag <- true;
        Sim.Signals.Retry
      | _ -> Sim.Signals.Pass);
  Alcotest.(check int) "access completes" 7 (Sim.Machine.read_u64 m base);
  Alcotest.(check bool) "trap fired after access" true !trap_fired;
  Alcotest.(check bool) "pkru restored" true
    (Mpk.Pkru.equal m.Sim.Machine.cpu.Sim.Cpu.pkru restricted);
  (* A second access faults again: the protection really was restored. *)
  match Sim.Machine.write_u64 m base 8 with
  | exception Vmm.Fault.Unhandled _ -> Alcotest.fail "handler chain still installed"
  | _ ->
    (* The segv handler opens it again, so this succeeds too; but the trap
       fired a second time. *)
    Alcotest.(check bool) "still restored" true
      (Mpk.Pkru.equal m.Sim.Machine.cpu.Sim.Cpu.pkru restricted)

(* A handler that keeps returning Retry without fixing the cause exhausts
   the retry bound; the resulting exception must carry the kind of the
   fault that was actually delivered, not a made-up one. *)
let test_retry_exhaustion_reports_pkey_kind () =
  let m = machine_with_region ~base () in
  Sim.Machine.write_u64 m base 1;
  m.Sim.Machine.cpu.Sim.Cpu.pkru <- Mpk.Pkru.all_disabled_except [];
  Sim.Signals.register_segv m.Sim.Machine.signals (fun _ -> Sim.Signals.Retry);
  match Sim.Machine.read_u64 m base with
  | exception Vmm.Fault.Unhandled { Vmm.Fault.kind = Vmm.Fault.Pkey_violation k; _ } ->
    Alcotest.(check int) "actual fault kind survives" 1 (Mpk.Pkey.to_int k)
  | exception Vmm.Fault.Unhandled f ->
    Alcotest.failf "wrong kind: %s" (Vmm.Fault.to_string f)
  | _ -> Alcotest.fail "expected exhaustion"

let test_retry_exhaustion_reports_not_mapped () =
  let m = Sim.Machine.create () in
  Sim.Signals.register_segv m.Sim.Machine.signals (fun _ -> Sim.Signals.Retry);
  match Sim.Machine.read_u8 m 0xbad000 with
  | exception Vmm.Fault.Unhandled { Vmm.Fault.kind = Vmm.Fault.Not_mapped; _ } -> ()
  | exception Vmm.Fault.Unhandled f ->
    Alcotest.failf "wrong kind: %s" (Vmm.Fault.to_string f)
  | _ -> Alcotest.fail "expected exhaustion"

let test_wrpkru_charges_and_counts () =
  let m = Sim.Machine.create () in
  let c0 = Sim.Machine.cycles m in
  Sim.Cpu.wrpkru m.Sim.Machine.cpu (Mpk.Pkru.all_disabled_except []);
  Alcotest.(check int) "cycles" (c0 + Sim.Cost.default.Sim.Cost.wrpkru) (Sim.Machine.cycles m);
  Alcotest.(check int) "retired" 1 m.Sim.Machine.cpu.Sim.Cpu.wrpkru_retired

let test_priv_access_bypasses_pkru () =
  let m = machine_with_region ~base () in
  Sim.Machine.write_u64 m base 1234;
  m.Sim.Machine.cpu.Sim.Cpu.pkru <- Mpk.Pkru.all_disabled_except [];
  let before = Sim.Machine.cycles m in
  Alcotest.(check int) "priv read" 1234 (Sim.Machine.priv_read_u64 m base);
  Sim.Machine.priv_write_u64 m base 777;
  Alcotest.(check int) "priv write" 777 (Sim.Machine.priv_read_u64 m base);
  Alcotest.(check int) "no cycles" before (Sim.Machine.cycles m)

let test_demand_page_charges () =
  let m = machine_with_region ~pkey:(key 0) ~base () in
  let c0 = Sim.Machine.cycles m in
  ignore (Sim.Machine.read_u8 m base);
  let first_touch = Sim.Machine.cycles m - c0 in
  let c1 = Sim.Machine.cycles m in
  ignore (Sim.Machine.read_u8 m base);
  let second_touch = Sim.Machine.cycles m - c1 in
  Alcotest.(check bool) "first touch pays the soft fault" true
    (first_touch = second_touch + Sim.Cost.default.Sim.Cost.soft_page_fault)

let suite =
  [
    Alcotest.test_case "read/write widths" `Quick test_rw_roundtrip_widths;
    Alcotest.test_case "page-straddling access" `Quick test_straddling_access;
    Alcotest.test_case "f64 round-trip" `Quick test_f64_roundtrip;
    QCheck_alcotest.to_alcotest prop_f64_roundtrip;
    Alcotest.test_case "bytes helpers" `Quick test_bytes_helpers;
    Alcotest.test_case "unmapped access faults" `Quick test_unmapped_faults;
    Alcotest.test_case "prot violation" `Quick test_prot_violation;
    Alcotest.test_case "pkey enforcement" `Quick test_pkey_enforcement;
    Alcotest.test_case "probe side-effect free" `Quick test_probe_does_not_fault_or_charge;
    Alcotest.test_case "handler retry" `Quick test_handler_retry_semantics;
    Alcotest.test_case "handler chain pass" `Quick test_handler_chain_pass;
    Alcotest.test_case "handler kill" `Quick test_handler_kill;
    Alcotest.test_case "handler chain: kill order" `Quick test_handler_chain_kill_order;
    Alcotest.test_case "unregister pops newest" `Quick test_unregister_segv_pops_newest;
    Alcotest.test_case "reorder chain" `Quick test_reorder_segv_chain;
    Alcotest.test_case "last fault recorded" `Quick test_last_fault_recorded;
    Alcotest.test_case "trap without handler: context" `Quick
      test_trap_without_handler_reports_context;
    Alcotest.test_case "single-step trap" `Quick test_single_step_trap;
    Alcotest.test_case "retry exhaustion: pkey kind" `Quick test_retry_exhaustion_reports_pkey_kind;
    Alcotest.test_case "retry exhaustion: not mapped" `Quick test_retry_exhaustion_reports_not_mapped;
    Alcotest.test_case "wrpkru cost" `Quick test_wrpkru_charges_and_counts;
    Alcotest.test_case "privileged access" `Quick test_priv_access_bypasses_pkru;
    Alcotest.test_case "demand page cost" `Quick test_demand_page_charges;
  ]
