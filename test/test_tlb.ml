(* Tests for the software TLB: architectural invisibility (cycle counts,
   fault sequences and event traces bit-identical with the TLB on or
   off), the invalidation protocol (mapping epoch, PKRU epoch, raw PKRU
   value), and the observability plumbing (machine stats, runner-injected
   sink counters, Prometheus families). *)

let page = Vmm.Layout.page_size
let key = Mpk.Pkey.of_int
let base = 0x20_0000

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.fail msg

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
  nn = 0 || scan 0

let machine_with_region ?(tlb = true) ?(pkey = key 1) ?(pages = 4) () =
  let m = Sim.Machine.create ~tlb () in
  ok
    (Vmm.Page_table.reserve m.Sim.Machine.page_table ~base ~size:(pages * page)
       ~prot:Vmm.Prot.read_write ~pkey);
  m

let trace_json sink =
  Util.Json.to_string
    (Util.Json.List (List.map Telemetry.Event.record_to_json (Telemetry.Sink.events sink)))

(* --- Architectural invisibility --- *)

(* Full-stack equivalence: the same workload under the same configuration
   must produce identical simulated cycles, gate transitions and event
   traces with the TLB on and off.  (Sink counters are excluded: the
   runner's injected tlb_* counters differ by design.)  Profiling mode
   additionally exercises the fault + single-step path. *)
let check_equivalence mode () =
  let bench =
    Workloads.Bench_def.bench ~page:(Workloads.Dom_scripts.page ~rows:6) "tlb-eq"
      (Workloads.Dom_scripts.dom_attr ~iters:12)
  in
  let suite = { Workloads.Bench_def.suite_name = "tlb-eq"; benches = [ bench ] } in
  let profile = Workloads.Runner.profile_suite suite in
  let run tlb = Workloads.Runner.run_config ~telemetry:true ~tlb ~mode ~profile bench in
  let on = run true in
  let off = run false in
  Alcotest.(check int) "cycles identical" off.Workloads.Runner.cycles on.Workloads.Runner.cycles;
  Alcotest.(check int) "transitions identical" off.Workloads.Runner.transitions
    on.Workloads.Runner.transitions;
  match (on.Workloads.Runner.trace, off.Workloads.Runner.trace) with
  | Some s_on, Some s_off ->
    Alcotest.(check int) "events_total identical" (Telemetry.Sink.events_total s_off)
      (Telemetry.Sink.events_total s_on);
    Alcotest.(check string) "event trace bit-identical" (trace_json s_off) (trace_json s_on);
    Alcotest.(check bool) "tlb-on run actually hit" true
      (Telemetry.Sink.count s_on "tlb_hit" > 0);
    Alcotest.(check int) "tlb-off run never hit" 0 (Telemetry.Sink.count s_off "tlb_hit")
  | _ -> Alcotest.fail "expected traces from both runs"

(* Machine-level equivalence on the profiler's fault + trap-flag path:
   every access faults, is single-stepped with a permissive PKRU, and the
   restrictive view is restored by the trap handler.  Cycles and the full
   event sequence must not depend on the TLB. *)
let single_step_sequence ~tlb =
  let m = machine_with_region ~tlb () in
  Sim.Machine.write_u64 m base 7;
  let restricted = Mpk.Pkru.all_disabled_except [] in
  let sink = Telemetry.Sink.create () in
  Telemetry.Sink.with_sink sink (fun () ->
      Sim.Cpu.set_pkru m.Sim.Machine.cpu restricted;
      Sim.Signals.register_trap m.Sim.Machine.signals (fun () ->
          Sim.Cpu.set_pkru m.Sim.Machine.cpu restricted);
      Sim.Signals.register_segv m.Sim.Machine.signals (fun f ->
          match f.Vmm.Fault.kind with
          | Vmm.Fault.Pkey_violation _ ->
            Sim.Cpu.set_pkru m.Sim.Machine.cpu Mpk.Pkru.all_enabled;
            m.Sim.Machine.cpu.Sim.Cpu.trap_flag <- true;
            Sim.Signals.Retry
          | _ -> Sim.Signals.Pass);
      for i = 0 to 7 do
        ignore (Sim.Machine.read_u64 m (base + (i mod 2 * 8)))
      done);
  (Sim.Machine.cycles m, Telemetry.Sink.events_total sink, trace_json sink)

let test_single_step_equivalence () =
  let cycles_on, events_on, trace_on = single_step_sequence ~tlb:true in
  let cycles_off, events_off, trace_off = single_step_sequence ~tlb:false in
  Alcotest.(check int) "cycles identical" cycles_off cycles_on;
  Alcotest.(check int) "events identical" events_off events_on;
  Alcotest.(check bool) "faults actually occurred" true (events_on > 0);
  Alcotest.(check string) "trace bit-identical" trace_off trace_on

(* --- Invalidation edges --- *)

let test_pkey_mprotect_invalidates () =
  let m = machine_with_region ~pkey:(key 0) () in
  Sim.Machine.write_u64 m base 11;
  Alcotest.(check int) "cached read" 11 (Sim.Machine.read_u64 m base);
  (* Retag the page under the cached translation, with a PKRU that denies
     the new key: the next access must miss and fault. *)
  ok (Vmm.Page_table.pkey_mprotect m.Sim.Machine.page_table ~base ~size:page (key 1));
  Sim.Cpu.set_pkru m.Sim.Machine.cpu (Mpk.Pkru.all_disabled_except []);
  match Sim.Machine.read_u64 m base with
  | exception Vmm.Fault.Unhandled { Vmm.Fault.kind = Vmm.Fault.Pkey_violation k; _ } ->
    Alcotest.(check int) "faults on the new key" 1 (Mpk.Pkey.to_int k)
  | _ -> Alcotest.fail "expected a pkey fault after pkey_mprotect"

let test_mprotect_invalidates () =
  let m = machine_with_region ~pkey:(key 0) () in
  Sim.Machine.write_u64 m base 5;
  ok (Vmm.Page_table.mprotect m.Sim.Machine.page_table ~base ~size:page Vmm.Prot.read_only);
  Alcotest.(check int) "read still fine" 5 (Sim.Machine.read_u64 m base);
  match Sim.Machine.write_u64 m base 6 with
  | exception Vmm.Fault.Unhandled { Vmm.Fault.kind = Vmm.Fault.Prot_violation; _ } -> ()
  | _ -> Alcotest.fail "expected a prot fault after mprotect"

let test_gate_pkru_rewrite_rechecks () =
  (* A call gate's WRPKRU drops the trusted key: the entry cached while
     trusted must not satisfy accesses made inside the gate. *)
  let m = machine_with_region ~pkey:(key 1) () in
  let gate = Runtime.Gate.create ~trusted_pkey:(key 1) m in
  Sim.Machine.write_u64 m base 99;
  Alcotest.(check int) "cached while trusted" 99 (Sim.Machine.read_u64 m base);
  (match
     Runtime.Gate.call_untrusted gate (fun () -> ignore (Sim.Machine.read_u64 m base))
   with
  | exception Vmm.Fault.Unhandled { Vmm.Fault.kind = Vmm.Fault.Pkey_violation k; _ } ->
    Alcotest.(check int) "trusted key denied inside gate" 1 (Mpk.Pkey.to_int k)
  | _ -> Alcotest.fail "gated access to trusted memory should fault");
  (* Back outside the gate the access works again. *)
  Alcotest.(check int) "restored after gate" 99 (Sim.Machine.read_u64 m base)

let test_direct_pkru_store_invalidates () =
  (* No epoch bump here — the raw-PKRU-value comparison must catch it. *)
  let m = machine_with_region () in
  Sim.Machine.write_u64 m base 3;
  Alcotest.(check int) "cached" 3 (Sim.Machine.read_u64 m base);
  m.Sim.Machine.cpu.Sim.Cpu.pkru <- Mpk.Pkru.all_disabled_except [];
  match Sim.Machine.read_u64 m base with
  | exception Vmm.Fault.Unhandled { Vmm.Fault.kind = Vmm.Fault.Pkey_violation _; _ } -> ()
  | _ -> Alcotest.fail "expected a fault after a direct pkru store"

let test_trap_fires_after_tlb_hit () =
  let m = machine_with_region ~pkey:(key 0) () in
  Sim.Machine.write_u64 m base 1;
  Alcotest.(check int) "entry warmed" 1 (Sim.Machine.read_u64 m base);
  let fired = ref false in
  Sim.Signals.register_trap m.Sim.Machine.signals (fun () -> fired := true);
  m.Sim.Machine.cpu.Sim.Cpu.trap_flag <- true;
  ignore (Sim.Machine.read_u64 m base);
  Alcotest.(check bool) "trap fired on a TLB-hit access" true !fired;
  Alcotest.(check bool) "hit actually happened" true
    ((Sim.Machine.tlb_stats m).Sim.Tlb.hits > 0)

(* --- Stats and counters --- *)

let test_stats_accumulate_and_off_machine_stays_zero () =
  let m = machine_with_region ~pkey:(key 0) () in
  for _ = 1 to 10 do
    ignore (Sim.Machine.read_u64 m base)
  done;
  let s = Sim.Machine.tlb_stats m in
  Alcotest.(check bool) "hits counted" true (s.Sim.Tlb.hits >= 9);
  Alcotest.(check bool) "first access missed" true (s.Sim.Tlb.misses >= 1);
  Alcotest.(check bool) "hit rate high" true (Sim.Tlb.hit_rate s > 0.8);
  let off = machine_with_region ~tlb:false ~pkey:(key 0) () in
  for _ = 1 to 10 do
    ignore (Sim.Machine.read_u64 off base)
  done;
  Alcotest.(check bool) "tlb-off machine reports zero stats" true
    (Sim.Machine.tlb_stats off = Sim.Tlb.zero_stats);
  Alcotest.(check bool) "tlb flag readable" true
    (Sim.Machine.tlb_enabled m && not (Sim.Machine.tlb_enabled off))

let test_cycle_accounting_o1 () =
  (* spawn_cpu is O(1) and Machine.cycles is an accumulator, not a fold:
     charges and resets on any hart must keep the total exact. *)
  let m = Sim.Machine.create () in
  let c1 = Sim.Machine.spawn_cpu m in
  let c2 = Sim.Machine.spawn_cpu m in
  Alcotest.(check (list int)) "hart ids, boot first" [ 0; 1; 2 ]
    (List.map (fun c -> c.Sim.Cpu.id) (Sim.Machine.cpus m));
  let base_cycles = Sim.Machine.cycles m in
  Sim.Cpu.charge m.Sim.Machine.cpu 10;
  Sim.Cpu.charge c1 20;
  Sim.Cpu.charge c2 30;
  Alcotest.(check int) "total accumulates across harts" (base_cycles + 60) (Sim.Machine.cycles m);
  Sim.Cpu.reset_cycles c1;
  Alcotest.(check int) "reset deducts that hart's share" (base_cycles + 40)
    (Sim.Machine.cycles m);
  Alcotest.(check int) "per-hart counter zeroed" 0 (Sim.Cpu.cycles c1)

let test_prometheus_tlb_families () =
  let sink = Telemetry.Sink.create () in
  let empty = Telemetry.Export.prometheus sink in
  Alcotest.(check bool) "hits family exposed at zero" true
    (contains empty "pkru_tlb_hits_total 0");
  Alcotest.(check bool) "flushes family exposed at zero" true
    (contains empty "pkru_tlb_flushes_total 0");
  Telemetry.Sink.incr sink ~by:5 "tlb_hit";
  Telemetry.Sink.incr sink ~by:2 "tlb_miss";
  Telemetry.Sink.incr sink ~by:1 "tlb_flush";
  let from_counters = Telemetry.Export.prometheus sink in
  Alcotest.(check bool) "hits from sink counters" true
    (contains from_counters "pkru_tlb_hits_total 5");
  Alcotest.(check bool) "misses from sink counters" true
    (contains from_counters "pkru_tlb_misses_total 2");
  let explicit = Telemetry.Export.prometheus ~tlb:(7, 3, 1) sink in
  Alcotest.(check bool) "explicit stats win" true (contains explicit "pkru_tlb_hits_total 7")

let test_runner_injects_counters () =
  let bench = Workloads.Bench_def.bench "tlb-cnt" (Workloads.Kernels.richards ~iterations:5) in
  let profile = Runtime.Profile.create () in
  let m =
    Workloads.Runner.run_config ~telemetry:true ~mode:Pkru_safe.Config.Base ~profile bench
  in
  match m.Workloads.Runner.trace with
  | None -> Alcotest.fail "expected a trace"
  | Some sink ->
    Alcotest.(check bool) "tlb_hit counter injected" true
      (Telemetry.Sink.count sink "tlb_hit" > 0);
    (* The counters ride into the summary JSON (bench --json digests). *)
    Alcotest.(check bool) "summary_json carries tlb counters" true
      (contains (Util.Json.to_string (Telemetry.Export.summary_json sink)) "tlb_hit")

let suite =
  [
    Alcotest.test_case "equivalence: mpk mode" `Quick (check_equivalence Pkru_safe.Config.Mpk);
    Alcotest.test_case "equivalence: profiling mode" `Quick
      (check_equivalence Pkru_safe.Config.Profiling);
    Alcotest.test_case "equivalence: single-step path" `Quick test_single_step_equivalence;
    Alcotest.test_case "pkey_mprotect invalidates" `Quick test_pkey_mprotect_invalidates;
    Alcotest.test_case "mprotect invalidates" `Quick test_mprotect_invalidates;
    Alcotest.test_case "gate pkru rewrite rechecks" `Quick test_gate_pkru_rewrite_rechecks;
    Alcotest.test_case "direct pkru store invalidates" `Quick test_direct_pkru_store_invalidates;
    Alcotest.test_case "trap after tlb hit" `Quick test_trap_fires_after_tlb_hit;
    Alcotest.test_case "stats + tlb-off zero" `Quick test_stats_accumulate_and_off_machine_stays_zero;
    Alcotest.test_case "O(1) cycle accounting" `Quick test_cycle_accounting_o1;
    Alcotest.test_case "prometheus tlb families" `Quick test_prometheus_tlb_families;
    Alcotest.test_case "runner injects tlb counters" `Quick test_runner_injects_counters;
  ]
