(* Fleet scheduler tests: scheduling must be architecturally invisible
   (per-session cycles, transitions, checksums and traces independent of
   the CPU count and of interleaving), a single-session fleet run must be
   bit-identical to the plain runner, the shared backing budget must
   surface as per-session Oom outcomes without sinking the fleet, and the
   telemetry guard must keep process-wide writers out of a fleet run. *)

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.fail msg

let trace_json sink =
  Util.Json.to_string
    (Util.Json.List (List.map Telemetry.Event.record_to_json (Telemetry.Sink.events sink)))

let mixed_jobs =
  [
    Fleet.job_of_bench (Workloads.Bench_def.bench "light" (Workloads.Kernels.fft ~n:8));
    Fleet.job_of_bench
      (Workloads.Bench_def.bench "heavy" (Workloads.Kernels.crypto_sha ~iters:6));
  ]

let ident_bench =
  Workloads.Bench_def.bench ~page:(Workloads.Dom_scripts.page ~rows:4) "ident"
    (Workloads.Dom_scripts.dom_attr ~iters:6)

let session_digests (r : Fleet.result) =
  List.map
    (fun (sr : Fleet.session_result) ->
      ((sr.Fleet.sr_name, sr.Fleet.sr_cycles), (sr.Fleet.sr_transitions, sr.Fleet.sr_checksum)))
    r.Fleet.r_results

(* Same seed, same N: per-session results must be identical whatever the
   CPU count, with yields forced mid-script by a small timeslice. *)
let test_determinism_across_cpus () =
  let run cpus = Fleet.run ~cpus ~timeslice:100 ~max_live:16 ~sessions:24 mixed_jobs in
  let r1 = run 1 and r3 = run 3 in
  Alcotest.(check int) "all complete at 1 cpu" 24 r1.Fleet.r_completed;
  Alcotest.(check int) "all complete at 3 cpus" 24 r3.Fleet.r_completed;
  Alcotest.(check bool) "yields actually happened" true (r1.Fleet.r_yields > 0);
  Alcotest.(check (list (pair (pair string int) (pair int int))))
    "per-session digests independent of cpu count" (session_digests r1) (session_digests r3);
  (* Repeat runs are reproducible outright. *)
  Alcotest.(check (list (pair (pair string int) (pair int int))))
    "repeat run identical" (session_digests r3) (session_digests (run 3))

(* A single-session fleet run is the runner's measurement, bit for bit:
   cycles, transitions, the event trace and every injected counter — even
   though the fleet run parks and resumes the session mid-script. *)
let test_single_session_bit_identity () =
  let profile = Runtime.Profile.create () in
  let runner =
    Workloads.Runner.run_config ~telemetry:true ~mode:Pkru_safe.Config.Base ~profile
      ident_bench
  in
  let fleet =
    Fleet.run ~telemetry:true ~timeslice:150 ~sessions:1 [ Fleet.job_of_bench ident_bench ]
  in
  let sr = List.hd fleet.Fleet.r_results in
  Alcotest.(check bool) "fleet run yielded mid-script" true (fleet.Fleet.r_yields > 0);
  Alcotest.(check int) "cycles" runner.Workloads.Runner.cycles sr.Fleet.sr_cycles;
  Alcotest.(check int) "transitions" runner.Workloads.Runner.transitions
    sr.Fleet.sr_transitions;
  match (fleet.Fleet.r_trace, runner.Workloads.Runner.trace) with
  | Some ft, Some rt ->
    Alcotest.(check string) "event trace" (trace_json rt) (trace_json ft);
    List.iter
      (fun counter ->
        Alcotest.(check int) counter (Telemetry.Sink.count rt counter)
          (Telemetry.Sink.count ft counter))
      [ "tlb_hit"; "tlb_miss"; "tlb_flush"; "engine_var_ic_hit"; "engine_var_ic_miss";
        "engine_prop_ic_hit"; "engine_prop_ic_miss"; "engine_super_exec";
        "engine_selector_hit"; "engine_selector_miss" ]
  | _ -> Alcotest.fail "expected traces on both sides"

(* Satellite regression: object-origin ids are per-evaluator, so two
   interleaved sessions mint the same ids as two sequential ones. *)
let test_origin_ids_per_session () =
  let mk () =
    let env = ok (Pkru_safe.Env.create (Pkru_safe.Config.make Pkru_safe.Config.Base)) in
    Engine.Eval.create (Engine.Value.create_heap env)
  in
  let e1 = mk () and e2 = mk () in
  let interleaved =
    List.concat_map
      (fun _ -> [ Engine.Eval.fresh_origin e1; Engine.Eval.fresh_origin e2 ])
      [ (); (); () ]
  in
  Alcotest.(check (list int)) "interleaving cannot perturb ids" [ 1; 1; 2; 2; 3; 3 ]
    interleaved;
  let e3 = mk () in
  let sequential = List.map (fun _ -> Engine.Eval.fresh_origin e3) [ (); (); () ] in
  Alcotest.(check (list int)) "fresh instance counts from 1 again" [ 1; 2; 3 ] sequential

(* End-to-end flavour of the same property: two sessions interleaved by
   the fleet report exactly the cycles the runner reports for a solo
   run of the same bench. *)
let test_interleaved_sessions_match_solo () =
  let profile = Runtime.Profile.create () in
  let solo =
    Workloads.Runner.run_config ~mode:Pkru_safe.Config.Base ~profile ident_bench
  in
  let r =
    Fleet.run ~timeslice:100 ~sessions:2 [ Fleet.job_of_bench ident_bench ]
  in
  Alcotest.(check int) "both sessions complete" 2 r.Fleet.r_completed;
  List.iter
    (fun (sr : Fleet.session_result) ->
      Alcotest.(check int)
        (sr.Fleet.sr_name ^ " cycles match solo runner")
        solo.Workloads.Runner.cycles sr.Fleet.sr_cycles)
    r.Fleet.r_results

(* A starved shared page budget retires victims with Oom while the fleet
   completes; a generous one completes everything and reports budget
   accounting. *)
let test_shared_page_budget () =
  let jobs = [ Fleet.job_of_bench ident_bench ] in
  let starved = Fleet.run ~timeslice:200 ~max_live:8 ~page_budget:40 ~sessions:8 jobs in
  Alcotest.(check int) "every session retires" 8
    (starved.Fleet.r_completed + starved.Fleet.r_oom + starved.Fleet.r_failed);
  Alcotest.(check bool) "starvation produces oom outcomes" true (starved.Fleet.r_oom > 0);
  Alcotest.(check int) "no crashes, just oom" 0 starved.Fleet.r_failed;
  (match starved.Fleet.r_backing with
  | Some b -> Alcotest.(check bool) "denials counted" true (b.Fleet.bk_denials > 0)
  | None -> Alcotest.fail "expected backing stats");
  let fed = Fleet.run ~timeslice:200 ~max_live:4 ~page_budget:100_000 ~sessions:8 jobs in
  Alcotest.(check int) "generous budget completes all" 8 fed.Fleet.r_completed;
  match fed.Fleet.r_backing with
  | Some b ->
    Alcotest.(check int) "no denials" 0 b.Fleet.bk_denials;
    (* Sessions retire their pages, so the low-water mark stays well
       above budget-minus-one-session-times-max_live. *)
    Alcotest.(check bool) "retired sessions return pages" true (b.Fleet.bk_min_available > 0)
  | None -> Alcotest.fail "expected backing stats"

(* The guard: a process-wide telemetry writer cannot be installed while a
   fleet run is active, and a fleet refuses to start under one. *)
let test_telemetry_guard () =
  Telemetry.Guard.with_exclusive "test fleet" (fun () ->
      List.iter
        (fun (what, install) ->
          match install () with
          | exception Invalid_argument msg ->
            Alcotest.(check bool)
              (what ^ " error names the fleet run")
              true
              (let contains hay needle =
                 let nh = String.length hay and nn = String.length needle in
                 let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
                 nn = 0 || scan 0
               in
               contains msg "test fleet")
          | _ -> Alcotest.fail (what ^ " should refuse while the fleet guard is held"))
        [
          ("Sink.enable", fun () -> ignore (Telemetry.Sink.enable ()));
          ( "Sink.with_sink",
            fun () -> Telemetry.Sink.with_sink (Telemetry.Sink.create ()) (fun () -> ()) );
          ( "Sampler.with_sampler",
            fun () ->
              Telemetry.Sampler.with_sampler
                (Telemetry.Sampler.create ~every:64)
                (fun () -> ()) );
          ( "Census.with_census",
            fun () ->
              Telemetry.Census.with_census (Telemetry.Census.create ~every:64 ()) (fun () -> ())
          );
          ( "Flight.with_recorder",
            fun () -> Telemetry.Flight.with_recorder (Telemetry.Flight.create ()) (fun () -> ())
          );
        ]);
  Alcotest.(check (option string)) "guard released" None (Telemetry.Guard.held ());
  (* And the converse: an installed writer blocks the fleet from starting. *)
  Telemetry.Sink.with_sink (Telemetry.Sink.create ()) (fun () ->
      match Fleet.run ~sessions:1 mixed_jobs with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "fleet should refuse to start under a process-wide sink")

(* Satellite regression: the selector split-memo is bounded and counts
   its evictions. *)
let test_selector_memo_bounded () =
  let evictions_before = !Browser.Selector.split_memo_evictions in
  let env = ok (Pkru_safe.Env.create (Pkru_safe.Config.make Pkru_safe.Config.Base)) in
  let browser = Browser.create env in
  Browser.load_page browser "<div id=\"app\"><p>x</p></div>";
  (* The memo caches the split of each element's class attribute value;
     mutating the class to a fresh value before every class-selector
     query fills it well past the cap. *)
  ignore
    (Browser.exec_script browser
       (Printf.sprintf
          {|var root = domQuery('#app')[0];
            for (var i = 0; i < %d; i = i + 1) {
              domSetAttribute(root, 'class', 'c' + i + ' d' + i);
              domQuery('.needle');
            }|}
          (Browser.Selector.split_memo_cap + 64)));
  Alcotest.(check bool) "eviction counter advanced" true
    (!Browser.Selector.split_memo_evictions > evictions_before)

let suite =
  [
    Alcotest.test_case "determinism across cpu counts" `Quick test_determinism_across_cpus;
    Alcotest.test_case "single-session bit-identity vs runner" `Quick
      test_single_session_bit_identity;
    Alcotest.test_case "origin ids are per-session" `Quick test_origin_ids_per_session;
    Alcotest.test_case "interleaved sessions match solo runner" `Quick
      test_interleaved_sessions_match_solo;
    Alcotest.test_case "shared page budget" `Quick test_shared_page_budget;
    Alcotest.test_case "telemetry guard" `Quick test_telemetry_guard;
    Alcotest.test_case "selector memo bounded" `Quick test_selector_memo_bounded;
  ]
