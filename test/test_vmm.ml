(* Tests for the virtual-memory model: reservations, demand paging,
   protection and pkey changes. *)

let page = Vmm.Layout.page_size
let key = Mpk.Pkey.of_int

let fresh () = Vmm.Page_table.create ()

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.fail msg

let expect_error = function
  | Ok _ -> Alcotest.fail "expected an error"
  | Error _ -> ()

let test_reserve_and_demand_page () =
  let pt = fresh () in
  ok (Vmm.Page_table.reserve pt ~base:(16 * page) ~size:(8 * page) ~prot:Vmm.Prot.read_write ~pkey:(key 1));
  Alcotest.(check int) "nothing resident yet" 0 (Vmm.Page_table.resident_pages pt);
  Alcotest.(check bool) "reserved" true (Vmm.Page_table.is_reserved pt (17 * page));
  (match Vmm.Page_table.lookup pt ((17 * page) + 5) with
  | Some p -> Alcotest.(check int) "pkey" 1 (Mpk.Pkey.to_int p.Vmm.Page.pkey)
  | None -> Alcotest.fail "lookup failed");
  Alcotest.(check int) "one resident page" 1 (Vmm.Page_table.resident_pages pt);
  Alcotest.(check int) "one demand fault" 1 (Vmm.Page_table.demand_faults pt);
  (* Second touch of the same page is free. *)
  ignore (Vmm.Page_table.lookup pt (17 * page));
  Alcotest.(check int) "still one demand fault" 1 (Vmm.Page_table.demand_faults pt)

let test_lookup_unmapped () =
  let pt = fresh () in
  Alcotest.(check bool) "unmapped" true (Vmm.Page_table.lookup pt 0x1234 = None)

let test_reserve_overlap_rejected () =
  let pt = fresh () in
  ok (Vmm.Page_table.reserve pt ~base:0 ~size:(4 * page) ~prot:Vmm.Prot.read_write ~pkey:(key 0));
  expect_error
    (Vmm.Page_table.reserve pt ~base:(2 * page) ~size:(4 * page) ~prot:Vmm.Prot.read_write ~pkey:(key 0));
  (* Adjacent is fine. *)
  ok (Vmm.Page_table.reserve pt ~base:(4 * page) ~size:page ~prot:Vmm.Prot.read_only ~pkey:(key 0))

let test_reserve_validation () =
  let pt = fresh () in
  expect_error (Vmm.Page_table.reserve pt ~base:123 ~size:page ~prot:Vmm.Prot.read_write ~pkey:(key 0));
  expect_error (Vmm.Page_table.reserve pt ~base:0 ~size:0 ~prot:Vmm.Prot.read_write ~pkey:(key 0));
  expect_error
    (Vmm.Page_table.reserve pt ~base:0 ~size:page
       ~prot:{ Vmm.Prot.read = true; write = true; execute = true }
       ~pkey:(key 0))

let test_map_now () =
  let pt = fresh () in
  ok (Vmm.Page_table.map_now pt ~base:(page * 100) ~size:(3 * page) ~prot:Vmm.Prot.read_write ~pkey:(key 2));
  Alcotest.(check int) "all resident" 3 (Vmm.Page_table.resident_pages pt);
  Alcotest.(check int) "no demand faults" 0 (Vmm.Page_table.demand_faults pt)

let test_pkey_mprotect () =
  let pt = fresh () in
  ok (Vmm.Page_table.map_now pt ~base:0 ~size:(2 * page) ~prot:Vmm.Prot.read_write ~pkey:(key 0));
  ok (Vmm.Page_table.pkey_mprotect pt ~base:0 ~size:(2 * page) (key 7));
  (match Vmm.Page_table.lookup pt page with
  | Some p -> Alcotest.(check int) "retagged" 7 (Mpk.Pkey.to_int p.Vmm.Page.pkey)
  | None -> Alcotest.fail "lookup");
  expect_error (Vmm.Page_table.pkey_mprotect pt ~base:(100 * page) ~size:page (key 1))

let test_pkey_mprotect_applies_to_future_pages () =
  let pt = fresh () in
  ok (Vmm.Page_table.reserve pt ~base:0 ~size:(4 * page) ~prot:Vmm.Prot.read_write ~pkey:(key 0));
  ok (Vmm.Page_table.pkey_mprotect pt ~base:0 ~size:(4 * page) (key 3));
  (match Vmm.Page_table.lookup pt (3 * page) with
  | Some p -> Alcotest.(check int) "late page gets new key" 3 (Mpk.Pkey.to_int p.Vmm.Page.pkey)
  | None -> Alcotest.fail "lookup")

let test_mprotect () =
  let pt = fresh () in
  ok (Vmm.Page_table.map_now pt ~base:0 ~size:page ~prot:Vmm.Prot.read_write ~pkey:(key 0));
  ok (Vmm.Page_table.mprotect pt ~base:0 ~size:page Vmm.Prot.read_only);
  (match Vmm.Page_table.lookup pt 0 with
  | Some p -> Alcotest.(check bool) "read-only now" false p.Vmm.Page.prot.Vmm.Prot.write
  | None -> Alcotest.fail "lookup");
  expect_error
    (Vmm.Page_table.mprotect pt ~base:0 ~size:page
       { Vmm.Prot.read = true; write = true; execute = true })

(* Regions are held sorted and binary-searched: reserve many regions out
   of order and check point lookups, overlap rejection at both neighbours,
   range updates and the mapping epoch. *)
let test_many_regions_sorted_lookup () =
  let pt = fresh () in
  let bases = [ 90; 10; 50; 30; 70; 20; 60; 0; 40; 80 ] in
  List.iter
    (fun b ->
      ok
        (Vmm.Page_table.reserve pt ~base:(b * page) ~size:page ~prot:Vmm.Prot.read_write
           ~pkey:(key 0)))
    bases;
  let e0 = Vmm.Page_table.epoch pt in
  (* Every reserved page resolves; the gaps in between do not. *)
  List.iter
    (fun b ->
      Alcotest.(check bool)
        (Printf.sprintf "base %d mapped" b)
        true
        (Vmm.Page_table.lookup pt ((b * page) + 7) <> None);
      Alcotest.(check bool)
        (Printf.sprintf "gap after %d unmapped" b)
        true
        (Vmm.Page_table.lookup pt ((b + 1) * page) = None))
    bases;
  (* Overlap with either neighbour of the insertion point is rejected. *)
  expect_error
    (Vmm.Page_table.reserve pt ~base:(50 * page) ~size:page ~prot:Vmm.Prot.read_write
       ~pkey:(key 0));
  (* A range update touches exactly the regions it covers. *)
  ok (Vmm.Page_table.pkey_mprotect pt ~base:(30 * page) ~size:page (key 5));
  (match Vmm.Page_table.lookup pt (30 * page) with
  | Some p -> Alcotest.(check int) "retagged" 5 (Mpk.Pkey.to_int p.Vmm.Page.pkey)
  | None -> Alcotest.fail "lookup");
  (match Vmm.Page_table.lookup pt (40 * page) with
  | Some p -> Alcotest.(check int) "neighbour untouched" 0 (Mpk.Pkey.to_int p.Vmm.Page.pkey)
  | None -> Alcotest.fail "lookup");
  Alcotest.(check bool) "mapping changes bump the epoch" true (Vmm.Page_table.epoch pt > e0)

let test_prot_wx () =
  expect_error (Vmm.Prot.validate { Vmm.Prot.read = true; write = true; execute = true });
  ignore (ok (Vmm.Prot.validate Vmm.Prot.read_execute))

let test_layout_helpers () =
  Alcotest.(check bool) "secret in trusted" true (Vmm.Layout.in_trusted Vmm.Layout.secret_addr);
  Alcotest.(check bool) "secret not untrusted" false (Vmm.Layout.in_untrusted Vmm.Layout.secret_addr);
  Alcotest.(check int) "page round-trip" (42 * page)
    (Vmm.Layout.addr_of_page (Vmm.Layout.page_of_addr ((42 * page) + 7)));
  Alcotest.(check int) "offset" 7 (Vmm.Layout.page_offset ((42 * page) + 7))

let prop_page_of_addr_consistent =
  QCheck.Test.make ~count:500 ~name:"page_of_addr/addr_of_page/page_offset consistent"
    QCheck.(make Gen.(int_bound 0x3FFF_FFFF_FFFF))
    (fun addr ->
      Vmm.Layout.addr_of_page (Vmm.Layout.page_of_addr addr) + Vmm.Layout.page_offset addr
      = addr)

let test_fault_printing () =
  let f = { Vmm.Fault.addr = 0x1000; access = Vmm.Fault.Write; kind = Vmm.Fault.Pkey_violation (key 1) } in
  Alcotest.(check string) "to_string" "fault: SEGV_PKUERR(key=1) on write at 0x1000"
    (Vmm.Fault.to_string f)

let test_pkey_syscalls () =
  let pk = Vmm.Pkeys.create () in
  Alcotest.(check int) "none allocated" 0 (Vmm.Pkeys.allocated_count pk);
  (* Lowest-first allocation. *)
  (match Vmm.Pkeys.pkey_alloc pk with
  | Ok k -> Alcotest.(check int) "first key" 1 (Mpk.Pkey.to_int k)
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "allocated" true (Vmm.Pkeys.is_allocated pk (key 1));
  (* Exhaustion after 15 keys. *)
  for _ = 2 to 15 do
    match Vmm.Pkeys.pkey_alloc pk with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e
  done;
  Alcotest.(check int) "all taken" 15 (Vmm.Pkeys.allocated_count pk);
  (match Vmm.Pkeys.pkey_alloc pk with
  | Error "ENOSPC" -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected ENOSPC");
  (* Free and reuse. *)
  ok (Vmm.Pkeys.pkey_free pk (key 7));
  (match Vmm.Pkeys.pkey_alloc pk with
  | Ok k -> Alcotest.(check int) "freed key reused" 7 (Mpk.Pkey.to_int k)
  | Error e -> Alcotest.fail e);
  (* Error paths. *)
  expect_error (Vmm.Pkeys.pkey_free pk (key 0));
  ok (Vmm.Pkeys.pkey_free pk (key 7));
  expect_error (Vmm.Pkeys.pkey_free pk (key 7));
  expect_error (Vmm.Pkeys.reserve pk (key 1));
  expect_error (Vmm.Pkeys.reserve pk (key 0));
  ok (Vmm.Pkeys.reserve pk (key 7))

let test_pkalloc_claims_its_key () =
  let m = Sim.Machine.create () in
  let _pk =
    match Allocators.Pkalloc.create m with
    | Ok pk -> pk
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "key 1 claimed" true
    (Vmm.Pkeys.is_allocated m.Sim.Machine.pkeys (key 1));
  (* A second pkalloc on the same machine cannot claim the same key. *)
  match Allocators.Pkalloc.create m with
  | Error msg -> Alcotest.(check bool) "EBUSY surfaced" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "second claim of key 1 should fail"

let suite =
  [
    Alcotest.test_case "reserve + demand page" `Quick test_reserve_and_demand_page;
    Alcotest.test_case "lookup unmapped" `Quick test_lookup_unmapped;
    Alcotest.test_case "overlap rejected" `Quick test_reserve_overlap_rejected;
    Alcotest.test_case "reserve validation" `Quick test_reserve_validation;
    Alcotest.test_case "map_now" `Quick test_map_now;
    Alcotest.test_case "pkey_mprotect" `Quick test_pkey_mprotect;
    Alcotest.test_case "pkey_mprotect future pages" `Quick test_pkey_mprotect_applies_to_future_pages;
    Alcotest.test_case "mprotect" `Quick test_mprotect;
    Alcotest.test_case "many regions sorted lookup" `Quick test_many_regions_sorted_lookup;
    Alcotest.test_case "W^X rejected" `Quick test_prot_wx;
    Alcotest.test_case "layout helpers" `Quick test_layout_helpers;
    QCheck_alcotest.to_alcotest prop_page_of_addr_consistent;
    Alcotest.test_case "fault printing" `Quick test_fault_printing;
    Alcotest.test_case "pkey syscalls" `Quick test_pkey_syscalls;
    Alcotest.test_case "pkalloc claims its key" `Quick test_pkalloc_claims_its_key;
  ]
