(* Tests for the allocator stack: pools, size classes, both heap allocators
   and the pkalloc split allocator. *)

open Allocators

let page = Vmm.Layout.page_size
let key = Mpk.Pkey.of_int

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.fail msg

let fresh_pool ?(pages = 4096) ?(pkey = key 0) () =
  let m = Sim.Machine.create () in
  let pool = ok (Pool.create m ~base:0x100_0000 ~size:(pages * page) ~pkey) in
  (m, pool)

(* --- Pool --- *)

let test_pool_bump_and_recycle () =
  let _, pool = fresh_pool () in
  let a = Option.get (Pool.alloc_span pool 2) in
  let b = Option.get (Pool.alloc_span pool 3) in
  Alcotest.(check bool) "disjoint" true (b >= a + (2 * page) || a >= b + (3 * page));
  Alcotest.(check int) "in use" 5 (Pool.pages_in_use pool);
  Pool.free_span pool a 2;
  Alcotest.(check int) "after free" 3 (Pool.pages_in_use pool);
  let c = Option.get (Pool.alloc_span pool 1) in
  Alcotest.(check int) "recycled from freed span" a c;
  Alcotest.(check int) "high water" 5 (Pool.high_water_pages pool)

let test_pool_exhaustion () =
  let _, pool = fresh_pool ~pages:4 () in
  Alcotest.(check bool) "fits" true (Pool.alloc_span pool 4 <> None);
  Alcotest.(check bool) "exhausted" true (Pool.alloc_span pool 1 = None)

let test_pool_contains () =
  let _, pool = fresh_pool ~pages:2 () in
  Alcotest.(check bool) "inside" true (Pool.contains pool 0x100_0000);
  Alcotest.(check bool) "outside" false (Pool.contains pool (0x100_0000 + (2 * page)))

(* --- Size classes --- *)

let test_size_class_ladder () =
  Alcotest.(check bool) "1 byte" true (Size_class.of_size 1 <> None);
  (match Size_class.of_size 9 with
  | Some c -> Alcotest.(check int) "9 -> 16" 16 (Size_class.bytes c)
  | None -> Alcotest.fail "class expected");
  (match Size_class.of_size 3584 with
  | Some c -> Alcotest.(check int) "3584 exact" 3584 (Size_class.bytes c)
  | None -> Alcotest.fail "class expected");
  Alcotest.(check bool) "3585 is large" true (Size_class.of_size 3585 = None);
  Alcotest.(check bool) "0 invalid" true (Size_class.of_size 0 = None)

let prop_size_class_fits =
  QCheck.Test.make ~count:500 ~name:"size class fits and is minimal"
    QCheck.(int_range 1 3584)
    (fun n ->
      match Size_class.of_size n with
      | None -> false
      | Some c ->
        let b = Size_class.bytes c in
        b >= n
        && (Size_class.to_int c = 0
           || Size_class.bytes (Option.get (Size_class.of_size (b - 1))) <= b))

let prop_runs_fill_pages =
  QCheck.Test.make ~count:100 ~name:"run geometry consistent"
    QCheck.(int_range 1 3584)
    (fun n ->
      match Size_class.of_size n with
      | None -> false
      | Some c ->
        Size_class.slots_per_run c * Size_class.bytes c
        <= Size_class.run_pages c * Vmm.Layout.page_size
        && Size_class.slots_per_run c >= 1)

(* --- Jemalloc model --- *)

let fresh_je ?(pages = 4096) () =
  let m, pool = fresh_pool ~pages () in
  (m, Jemalloc_model.create m pool)

let test_je_basic_roundtrip () =
  let m, je = fresh_je () in
  let a = Option.get (Jemalloc_model.alloc je 100) in
  let b = Option.get (Jemalloc_model.alloc je 100) in
  Alcotest.(check bool) "distinct" true (a <> b);
  Alcotest.(check (option int)) "usable" (Some 112) (Jemalloc_model.usable_size je a);
  Sim.Machine.write_u64 m a 0xFEED;
  Alcotest.(check int) "payload round-trip" 0xFEED (Sim.Machine.read_u64 m a);
  Jemalloc_model.free je a;
  Jemalloc_model.free je b;
  Alcotest.(check int) "all runs released" 0 (Jemalloc_model.live_runs je)

let test_je_slot_reuse () =
  let _, je = fresh_je () in
  (* Fill one whole run of the 64-byte class, then free a single slot: the
     next allocation must reuse exactly that slot. *)
  let cls = Option.get (Size_class.of_size 64) in
  let slots = Size_class.slots_per_run cls in
  let addrs = Array.init slots (fun _ -> Option.get (Jemalloc_model.alloc je 64)) in
  let victim = addrs.(slots / 2) in
  Jemalloc_model.free je victim;
  let c = Option.get (Jemalloc_model.alloc je 64) in
  Alcotest.(check int) "slot reused" victim c

let test_je_large () =
  let _, je = fresh_je () in
  let a = Option.get (Jemalloc_model.alloc je 10_000) in
  Alcotest.(check int) "page aligned" 0 (Vmm.Layout.page_offset a);
  Alcotest.(check (option int)) "usable rounds to pages" (Some (3 * page))
    (Jemalloc_model.usable_size je a);
  Jemalloc_model.free je a

let test_je_errors () =
  let _, je = fresh_je () in
  let a = Option.get (Jemalloc_model.alloc je 64) in
  Jemalloc_model.free je a;
  Alcotest.(check bool) "double free rejected" true
    (match Jemalloc_model.free je a with
    | exception Invalid_argument _ -> true
    | () -> false);
  Alcotest.(check bool) "foreign pointer rejected" true
    (match Jemalloc_model.free je 0xdead0 with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_je_exhaustion () =
  let _, je = fresh_je ~pages:2 () in
  Alcotest.(check bool) "first fits" true (Jemalloc_model.alloc je page <> None);
  Alcotest.(check bool) "second fits" true (Jemalloc_model.alloc je page <> None);
  Alcotest.(check bool) "exhausted" true (Jemalloc_model.alloc je page = None)

(* Allocation/free stress against a shadow model: no live block may overlap
   another, and writes through one block never corrupt another. *)
let prop_je_no_overlap =
  QCheck.Test.make ~count:30 ~name:"jemalloc: live blocks never overlap"
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Util.Rng.create seed in
      let _, je = fresh_je () in
      let live = ref [] in
      let overlap (a1, s1) (a2, s2) = a1 < a2 + s2 && a2 < a1 + s1 in
      let result = ref true in
      for _ = 1 to 400 do
        if Util.Rng.int rng 3 < 2 || !live = [] then begin
          let size = 1 + Util.Rng.int rng 6000 in
          match Jemalloc_model.alloc je size with
          | None -> ()
          | Some addr ->
            let block = (addr, size) in
            if List.exists (overlap block) !live then result := false;
            live := block :: !live
        end
        else begin
          let idx = Util.Rng.int rng (List.length !live) in
          let addr, _ = List.nth !live idx in
          Jemalloc_model.free je addr;
          live := List.filteri (fun i _ -> i <> idx) !live
        end
      done;
      !result)

(* --- Dlmalloc model --- *)

let fresh_dl ?(pages = 4096) () =
  let m, pool = fresh_pool ~pages () in
  (m, Dlmalloc_model.create m pool)

let test_dl_basic_roundtrip () =
  let m, dl = fresh_dl () in
  let a = Option.get (Dlmalloc_model.alloc dl 100) in
  Alcotest.(check bool) "16-aligned payload" true (a mod 16 = 0);
  Sim.Machine.write_string m a "0123456789";
  Alcotest.(check string) "payload" "0123456789" (Sim.Machine.priv_read_string m a 10);
  (match Dlmalloc_model.usable_size dl a with
  | Some n -> Alcotest.(check bool) "usable >= requested" true (n >= 100)
  | None -> Alcotest.fail "usable_size");
  Dlmalloc_model.free dl a;
  Alcotest.(check bool) "not owned after free" false (Dlmalloc_model.owns dl a);
  ok (Dlmalloc_model.check_heap dl)

let test_dl_coalescing () =
  let _, dl = fresh_dl () in
  let a = Option.get (Dlmalloc_model.alloc dl 64) in
  let b = Option.get (Dlmalloc_model.alloc dl 64) in
  let c = Option.get (Dlmalloc_model.alloc dl 64) in
  (* Free in an order that exercises both next- and prev-coalescing. *)
  Dlmalloc_model.free dl a;
  Dlmalloc_model.free dl c;
  Dlmalloc_model.free dl b;
  ok (Dlmalloc_model.check_heap dl);
  (* After coalescing, a block spanning all three fits where [a] was. *)
  let big = Option.get (Dlmalloc_model.alloc dl 200) in
  Alcotest.(check int) "coalesced space reused" a big

let test_dl_errors () =
  let _, dl = fresh_dl () in
  let a = Option.get (Dlmalloc_model.alloc dl 64) in
  Dlmalloc_model.free dl a;
  Alcotest.(check bool) "double free" true
    (match Dlmalloc_model.free dl a with
    | exception Invalid_argument _ -> true
    | () -> false);
  Alcotest.(check bool) "foreign" true
    (match Dlmalloc_model.free dl 0x42 with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_dl_detects_corruption () =
  let m, dl = fresh_dl () in
  let a = Option.get (Dlmalloc_model.alloc dl 64) in
  (* Smash the header the way a heap-overflow bug would. *)
  Sim.Machine.priv_write_u64 m (a - 8) 0xFFFF;
  Alcotest.(check bool) "corruption detected" true
    (match Dlmalloc_model.free dl a with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_dl_is_slower_than_je () =
  (* The MU allocator must cost more cycles per op than the MT allocator;
     the paper's alloc-config overhead rests on this. *)
  let run_alloc_cycles alloc free machine =
    let c0 = Sim.Machine.cycles machine in
    let addrs = List.init 200 (fun i -> Option.get (alloc (16 + (i mod 64)))) in
    List.iter free addrs;
    Sim.Machine.cycles machine - c0
  in
  let m1, je = fresh_je () in
  let je_cycles = run_alloc_cycles (Jemalloc_model.alloc je) (Jemalloc_model.free je) m1 in
  let m2, dl = fresh_dl () in
  let dl_cycles = run_alloc_cycles (Dlmalloc_model.alloc dl) (Dlmalloc_model.free dl) m2 in
  Alcotest.(check bool)
    (Printf.sprintf "dl (%d) slower than je (%d)" dl_cycles je_cycles)
    true (dl_cycles > je_cycles)

let prop_dl_heap_invariants =
  QCheck.Test.make ~count:25 ~name:"dlmalloc: heap invariants under random workload"
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Util.Rng.create seed in
      let _, dl = fresh_dl () in
      let live = ref [] in
      for _ = 1 to 300 do
        if Util.Rng.int rng 3 < 2 || !live = [] then begin
          let size = 1 + Util.Rng.int rng 2000 in
          match Dlmalloc_model.alloc dl size with
          | None -> ()
          | Some addr -> live := addr :: !live
        end
        else begin
          let idx = Util.Rng.int rng (List.length !live) in
          Dlmalloc_model.free dl (List.nth !live idx);
          live := List.filteri (fun i _ -> i <> idx) !live
        end
      done;
      match Dlmalloc_model.check_heap dl with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_report msg)

let prop_dl_payload_integrity =
  QCheck.Test.make ~count:15 ~name:"dlmalloc: payloads survive neighbours' churn"
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Util.Rng.create seed in
      let m, dl = fresh_dl () in
      let live = Hashtbl.create 32 in
      let result = ref true in
      for step = 1 to 300 do
        if Util.Rng.int rng 3 < 2 || Hashtbl.length live = 0 then begin
          let size = 8 + Util.Rng.int rng 500 in
          match Dlmalloc_model.alloc dl size with
          | None -> ()
          | Some addr ->
            let stamp = (step * 0x9E37) land 0xFFFF_FFFF in
            Sim.Machine.write_u32 m addr stamp;
            Sim.Machine.write_u32 m (addr + size - 4) stamp;
            Hashtbl.replace live addr (size, stamp)
        end
        else begin
          let keys = Hashtbl.fold (fun k _ acc -> k :: acc) live [] in
          let addr = List.nth keys (Util.Rng.int rng (List.length keys)) in
          let size, stamp = Hashtbl.find live addr in
          if Sim.Machine.read_u32 m addr <> stamp then result := false;
          if Sim.Machine.read_u32 m (addr + size - 4) <> stamp then result := false;
          Dlmalloc_model.free dl addr;
          Hashtbl.remove live addr
        end
      done;
      Hashtbl.iter
        (fun addr (size, stamp) ->
          if Sim.Machine.read_u32 m addr <> stamp then result := false;
          if Sim.Machine.read_u32 m (addr + size - 4) <> stamp then result := false)
        live;
      !result)

(* --- pkalloc --- *)

let fresh_pk ?mu_backend () =
  let m = Sim.Machine.create () in
  (m, ok (Pkalloc.create ?mu_backend m))

let test_pk_pools_disjoint_and_tagged () =
  let m, pk = fresh_pk () in
  let t_addr = Option.get (Pkalloc.alloc_trusted pk 64) in
  let u_addr = Option.get (Pkalloc.alloc_untrusted pk 64) in
  Alcotest.(check bool) "trusted addr in MT" true (Vmm.Layout.in_trusted t_addr);
  Alcotest.(check bool) "untrusted addr in MU" true (Vmm.Layout.in_untrusted u_addr);
  let page_of addr = Option.get (Vmm.Page_table.lookup m.Sim.Machine.page_table addr) in
  Alcotest.(check int) "MT pkey" 1 (Mpk.Pkey.to_int (page_of t_addr).Vmm.Page.pkey);
  Alcotest.(check int) "MU pkey" 0 (Mpk.Pkey.to_int (page_of u_addr).Vmm.Page.pkey)

let test_pk_dealloc_dispatch () =
  let _, pk = fresh_pk () in
  let t_addr = Option.get (Pkalloc.alloc_trusted pk 64) in
  let u_addr = Option.get (Pkalloc.alloc_untrusted pk 64) in
  Pkalloc.dealloc pk t_addr;
  Pkalloc.dealloc pk u_addr;
  Alcotest.(check bool) "foreign rejected" true
    (match Pkalloc.dealloc pk 0x55 with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_pk_realloc_stays_in_pool () =
  let m, pk = fresh_pk () in
  let t_addr = Option.get (Pkalloc.alloc_trusted pk 32) in
  Sim.Machine.write_string m t_addr "trusted-data";
  let t_addr' = Option.get (Pkalloc.realloc pk t_addr 5000) in
  Alcotest.(check (option string)) "still trusted" (Some "Trusted")
    (match Pkalloc.pool_of_addr pk t_addr' with
    | Some `Trusted -> Some "Trusted"
    | Some `Untrusted -> Some "Untrusted"
    | None -> None);
  Alcotest.(check string) "payload copied" "trusted-data" (Sim.Machine.priv_read_string m t_addr' 12);
  let u_addr = Option.get (Pkalloc.alloc_untrusted pk 32) in
  Sim.Machine.write_string m u_addr "untrusted!!!";
  let u_addr' = Option.get (Pkalloc.realloc pk u_addr 4096) in
  Alcotest.(check bool) "still untrusted" true (Vmm.Layout.in_untrusted u_addr');
  Alcotest.(check string) "payload copied" "untrusted!!!"
    (Sim.Machine.priv_read_string m u_addr' 12)

let test_pk_realloc_shrink () =
  let m, pk = fresh_pk () in
  let a = Option.get (Pkalloc.alloc_trusted pk 256) in
  Sim.Machine.write_string m a "abcdefgh";
  let b = Option.get (Pkalloc.realloc pk a 8) in
  Alcotest.(check string) "first 8 bytes survive" "abcdefgh" (Sim.Machine.priv_read_string m b 8)

let test_pk_percent_untrusted () =
  let _, pk = fresh_pk () in
  ignore (Option.get (Pkalloc.alloc_trusted pk 1000));
  ignore (Option.get (Pkalloc.alloc_untrusted pk 1000));
  let pct = Pkalloc.percent_untrusted_bytes pk in
  Alcotest.(check bool) "roughly half" true (pct > 30.0 && pct < 70.0)

let test_pk_mu_jemalloc_ablation () =
  (* Ablation backend: MU allocations must come from the untrusted pool and
     be cheaper than with the dlmalloc backend. *)
  let m_fast, pk_fast = fresh_pk ~mu_backend:Pkalloc.Mu_jemalloc () in
  let m_slow, pk_slow = fresh_pk ~mu_backend:Pkalloc.Mu_dlmalloc () in
  let cycles_of m pk =
    let c0 = Sim.Machine.cycles m in
    let addrs = List.init 100 (fun _ -> Option.get (Pkalloc.alloc_untrusted pk 64)) in
    List.iter (Pkalloc.dealloc pk) addrs;
    Sim.Machine.cycles m - c0
  in
  let fast = cycles_of m_fast pk_fast in
  let slow = cycles_of m_slow pk_slow in
  Alcotest.(check bool) (Printf.sprintf "fast MU (%d) < slow MU (%d)" fast slow) true (fast < slow)

let test_dl_resize_in_place () =
  let m, dl = fresh_dl () in
  let a = Option.get (Dlmalloc_model.alloc dl 64) in
  Sim.Machine.write_u64 m a 0xAA;
  (* Shrink in place. *)
  Alcotest.(check bool) "shrink" true (Dlmalloc_model.try_resize dl a 16);
  Alcotest.(check int) "payload intact" 0xAA (Sim.Machine.read_u64 m a);
  ok (Dlmalloc_model.check_heap dl);
  (* Grow back into the split-off free neighbour. *)
  Alcotest.(check bool) "grow into free successor" true (Dlmalloc_model.try_resize dl a 64);
  ok (Dlmalloc_model.check_heap dl);
  (* Growing past a live neighbour fails. *)
  let b = Option.get (Dlmalloc_model.alloc dl 64) in
  ignore b;
  Alcotest.(check bool) "grow blocked by live neighbour" false
    (Dlmalloc_model.try_resize dl a 100_000);
  ok (Dlmalloc_model.check_heap dl)

let test_je_resize_in_place () =
  let _, je = fresh_je () in
  let a = Option.get (Jemalloc_model.alloc je 100) in
  (* 100 -> class 112: anything <= 112 resizes in place. *)
  Alcotest.(check bool) "same class" true (Jemalloc_model.try_resize je a 112);
  Alcotest.(check bool) "larger class" false (Jemalloc_model.try_resize je a 113);
  let big = Option.get (Jemalloc_model.alloc je 10_000) in
  Alcotest.(check bool) "within span" true (Jemalloc_model.try_resize je big (3 * page));
  Alcotest.(check bool) "beyond span" false (Jemalloc_model.try_resize je big ((3 * page) + 1))

let test_pk_realloc_in_place_keeps_address () =
  let m, pk = fresh_pk () in
  let a = Option.get (Pkalloc.alloc_trusted pk 100) in
  Sim.Machine.write_u64 m a 5;
  Alcotest.(check (option int)) "in-place realloc" (Some a) (Pkalloc.realloc pk a 110);
  Alcotest.(check int) "data intact" 5 (Sim.Machine.read_u64 m a)

(* --- pkalloc failpoints, quarantine and OOM paths --- *)

let test_pk_failpoint_one_shot () =
  let _, pk = fresh_pk () in
  Pkalloc.fail_nth_alloc pk `Trusted 2;
  Alcotest.(check bool) "first alloc unaffected" true (Pkalloc.alloc_trusted pk 32 <> None);
  Alcotest.(check bool) "second alloc fails" true (Pkalloc.alloc_trusted pk 32 = None);
  Alcotest.(check bool) "failpoint disarmed after firing" true
    (Pkalloc.alloc_trusted pk 32 <> None);
  (* The pools' failpoints are independent counters. *)
  Pkalloc.fail_nth_alloc pk `Untrusted 1;
  Alcotest.(check bool) "MT untouched by the MU failpoint" true
    (Pkalloc.alloc_trusted pk 32 <> None);
  Alcotest.(check bool) "MU fails immediately" true (Pkalloc.alloc_untrusted pk 32 = None);
  Alcotest.(check bool) "negative n rejected" true
    (match Pkalloc.fail_nth_alloc pk `Trusted (-1) with
    | exception Invalid_argument _ -> true
    | () -> false)

let stats_consistent (s : Alloc_stats.t) =
  s.Alloc_stats.allocs >= s.Alloc_stats.frees
  && s.Alloc_stats.bytes_allocated >= s.Alloc_stats.bytes_freed
  && Alloc_stats.live_bytes s >= 0

let test_pk_oom_keeps_stats_consistent () =
  let _, pk = fresh_pk () in
  (* Forced exhaustion on each pool in turn: the failed allocation must
     not be recorded as served, and the books stay balanced. *)
  let drive pool alloc =
    let before = (Pkalloc.trusted_stats pk).Alloc_stats.allocs in
    let before_mu = (Pkalloc.untrusted_stats pk).Alloc_stats.allocs in
    Pkalloc.fail_nth_alloc pk pool 1;
    Alcotest.(check bool) "forced OOM" true (alloc pk 64 = None);
    Alcotest.(check int) "failed MT alloc not counted" before
      (Pkalloc.trusted_stats pk).Alloc_stats.allocs;
    Alcotest.(check int) "failed MU alloc not counted" before_mu
      (Pkalloc.untrusted_stats pk).Alloc_stats.allocs;
    Alcotest.(check bool) "MT books consistent" true
      (stats_consistent (Pkalloc.trusted_stats pk));
    Alcotest.(check bool) "MU books consistent" true
      (stats_consistent (Pkalloc.untrusted_stats pk))
  in
  drive `Trusted Pkalloc.alloc_trusted;
  drive `Untrusted Pkalloc.alloc_untrusted;
  (* Both pools keep serving afterwards, and a full alloc/free cycle
     returns live bytes to where they started. *)
  let live () =
    Alloc_stats.live_bytes (Pkalloc.trusted_stats pk)
    + Alloc_stats.live_bytes (Pkalloc.untrusted_stats pk)
  in
  let before = live () in
  let t = Option.get (Pkalloc.alloc_trusted pk 128) in
  let u = Option.get (Pkalloc.alloc_untrusted pk 128) in
  Pkalloc.dealloc pk t;
  Pkalloc.dealloc pk u;
  Alcotest.(check int) "live bytes restored" before (live ())

let test_pk_realloc_copy_fault_frees_fresh_block () =
  let m, pk = fresh_pk () in
  let a = Option.get (Pkalloc.alloc_trusted pk 32) in
  Sim.Machine.write_u64 m a 4242;
  let frees_before = (Pkalloc.trusted_stats pk).Alloc_stats.frees in
  (* Deny the trusted key so the grow-copy's read faults mid-realloc
     (there is no SEGV handler on this machine, so the fault is fatal to
     the copy).  realloc must fail cleanly: fresh block released,
     original untouched. *)
  Sim.Cpu.set_pkru m.Sim.Machine.cpu (Mpk.Pkru.all_disabled_except []);
  Alcotest.(check (option int)) "realloc reports failure" None (Pkalloc.realloc pk a 5000);
  Sim.Cpu.set_pkru m.Sim.Machine.cpu Mpk.Pkru.all_enabled;
  Alcotest.(check int) "fresh block freed" (frees_before + 1)
    (Pkalloc.trusted_stats pk).Alloc_stats.frees;
  Alcotest.(check bool) "MT books consistent" true (stats_consistent (Pkalloc.trusted_stats pk));
  Alcotest.(check int) "original data intact" 4242 (Sim.Machine.read_u64 m a);
  (* The original allocation is still live and still resizable. *)
  let a' = Option.get (Pkalloc.realloc pk a 5000) in
  Alcotest.(check int) "data survives the eventual move" 4242 (Sim.Machine.read_u64 m a');
  Pkalloc.dealloc pk a'

let test_pk_quarantine_table () =
  let _, pk = fresh_pk () in
  Alcotest.(check int) "empty" 0 (Pkalloc.quarantined_count pk);
  Pkalloc.quarantine_site pk "alloc<1:2:3>";
  Pkalloc.quarantine_site pk "alloc<1:2:3>";
  Pkalloc.quarantine_site pk "alloc<0:0:9>";
  Alcotest.(check int) "idempotent insert" 2 (Pkalloc.quarantined_count pk);
  Alcotest.(check bool) "member" true (Pkalloc.site_quarantined pk "alloc<1:2:3>");
  Alcotest.(check bool) "non-member" false (Pkalloc.site_quarantined pk "alloc<9:9:9>");
  Alcotest.(check (list string)) "sorted listing" [ "alloc<0:0:9>"; "alloc<1:2:3>" ]
    (Pkalloc.quarantined_sites pk)

let prop_dl_resize_preserves_invariants =
  QCheck.Test.make ~count:20 ~name:"dlmalloc: try_resize keeps heap invariants"
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Util.Rng.create seed in
      let m, dl = fresh_dl () in
      ignore m;
      let live = ref [] in
      for _ = 1 to 250 do
        match Util.Rng.int rng 4 with
        | 0 | 1 ->
          (match Dlmalloc_model.alloc dl (1 + Util.Rng.int rng 800) with
          | Some a -> live := a :: !live
          | None -> ())
        | 2 when !live <> [] ->
          let idx = Util.Rng.int rng (List.length !live) in
          Dlmalloc_model.free dl (List.nth !live idx);
          live := List.filteri (fun i _ -> i <> idx) !live
        | _ when !live <> [] ->
          let idx = Util.Rng.int rng (List.length !live) in
          ignore (Dlmalloc_model.try_resize dl (List.nth !live idx) (1 + Util.Rng.int rng 1200))
        | _ -> ()
      done;
      match Dlmalloc_model.check_heap dl with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_report msg)

let suite =
  [
    Alcotest.test_case "pool bump + recycle" `Quick test_pool_bump_and_recycle;
    Alcotest.test_case "pool exhaustion" `Quick test_pool_exhaustion;
    Alcotest.test_case "pool contains" `Quick test_pool_contains;
    Alcotest.test_case "size-class ladder" `Quick test_size_class_ladder;
    QCheck_alcotest.to_alcotest prop_size_class_fits;
    Alcotest.test_case "jemalloc round-trip" `Quick test_je_basic_roundtrip;
    Alcotest.test_case "jemalloc slot reuse" `Quick test_je_slot_reuse;
    Alcotest.test_case "jemalloc large" `Quick test_je_large;
    Alcotest.test_case "jemalloc errors" `Quick test_je_errors;
    Alcotest.test_case "jemalloc exhaustion" `Quick test_je_exhaustion;
    QCheck_alcotest.to_alcotest prop_je_no_overlap;
    Alcotest.test_case "dlmalloc round-trip" `Quick test_dl_basic_roundtrip;
    Alcotest.test_case "dlmalloc coalescing" `Quick test_dl_coalescing;
    Alcotest.test_case "dlmalloc errors" `Quick test_dl_errors;
    Alcotest.test_case "dlmalloc corruption detection" `Quick test_dl_detects_corruption;
    Alcotest.test_case "dlmalloc slower than jemalloc" `Quick test_dl_is_slower_than_je;
    QCheck_alcotest.to_alcotest prop_dl_heap_invariants;
    QCheck_alcotest.to_alcotest prop_dl_payload_integrity;
    Alcotest.test_case "pkalloc pools disjoint + tagged" `Quick test_pk_pools_disjoint_and_tagged;
    Alcotest.test_case "pkalloc dealloc dispatch" `Quick test_pk_dealloc_dispatch;
    Alcotest.test_case "pkalloc realloc stays in pool" `Quick test_pk_realloc_stays_in_pool;
    Alcotest.test_case "pkalloc realloc shrink" `Quick test_pk_realloc_shrink;
    Alcotest.test_case "pkalloc %MU" `Quick test_pk_percent_untrusted;
    Alcotest.test_case "pkalloc MU-jemalloc ablation" `Quick test_pk_mu_jemalloc_ablation;
    Alcotest.test_case "dlmalloc resize in place" `Quick test_dl_resize_in_place;
    Alcotest.test_case "jemalloc resize in place" `Quick test_je_resize_in_place;
    Alcotest.test_case "pkalloc in-place realloc" `Quick test_pk_realloc_in_place_keeps_address;
    Alcotest.test_case "pkalloc failpoint one-shot" `Quick test_pk_failpoint_one_shot;
    Alcotest.test_case "pkalloc OOM stats consistent" `Quick test_pk_oom_keeps_stats_consistent;
    Alcotest.test_case "pkalloc realloc copy-fault cleanup" `Quick
      test_pk_realloc_copy_fault_frees_fresh_block;
    Alcotest.test_case "pkalloc quarantine table" `Quick test_pk_quarantine_table;
  ]
