(* The Garmr attack battery and its hardened-gate defenses: every attack
   class must leak undefended and be defeated defended; the defenses'
   unit surfaces (sigframe scrub, syscall filter, gate re-verification)
   are probed directly; and the whole battery is deterministic. *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let mk_env ?(defenses = Pkru_safe.Config.no_defenses) () =
  match Pkru_safe.Env.create (Pkru_safe.Config.make ~defenses Pkru_safe.Config.Mpk) with
  | Ok env -> env
  | Error msg -> Alcotest.fail msg

let all_on =
  {
    Pkru_safe.Config.sigframe_scrub = true;
    syscall_filter = true;
    gate_reverify = true;
  }

let seed = 7_402

(* --- The battery end-to-end ---------------------------------------------- *)

let test_undefended_attacks_leak () =
  List.iter
    (fun attack ->
      let r = Exploit.Garmr.run ~attack ~defended:false ~seed () in
      let name = Exploit.Garmr.attack_to_string attack in
      Alcotest.(check bool)
        (name ^ " leaks the secret undefended")
        true (Exploit.Garmr.succeeded r);
      Alcotest.(check (option int))
        (name ^ " leaked value") (Some Browser.secret_value) r.Exploit.Garmr.g_leaked;
      List.iteri
        (fun i outcome ->
          Alcotest.(check string)
            (Printf.sprintf "%s: victim-%d completes" name i)
            "completed" outcome)
        r.Exploit.Garmr.g_victim_outcomes)
    Exploit.Garmr.all_attacks

let test_defended_attacks_defeated () =
  List.iter
    (fun attack ->
      let r = Exploit.Garmr.run ~attack ~defended:true ~seed () in
      let name = Exploit.Garmr.attack_to_string attack in
      Alcotest.(check bool) (name ^ " defeated") true (Exploit.Garmr.defeated r);
      Alcotest.(check (option int)) (name ^ " leaks nothing") None r.Exploit.Garmr.g_leaked;
      (* The flight recorder names the attack at the point of kill. *)
      Alcotest.(check bool)
        (name ^ " has a flight dump")
        true
        (r.Exploit.Garmr.g_flight_dumps <> []);
      Alcotest.(check bool)
        (name ^ " dump names the attack")
        true
        (List.exists
           (fun d -> contains ~sub:name (Util.Json.to_string d))
           r.Exploit.Garmr.g_flight_dumps);
      (* ... and the kill or refusal is attributed to a hart. *)
      let hart_attributed =
        contains ~sub:"(hart" r.Exploit.Garmr.g_attacker_outcome
        ||
        match r.Exploit.Garmr.g_refusal with
        | Some msg -> contains ~sub:"(hart" msg
        | None -> false
      in
      Alcotest.(check bool) (name ^ " kill names a hart") true hart_attributed;
      List.iteri
        (fun i outcome ->
          Alcotest.(check string)
            (Printf.sprintf "%s: victim-%d survives the defense" name i)
            "completed" outcome)
        r.Exploit.Garmr.g_victim_outcomes)
    Exploit.Garmr.all_attacks

let test_defended_attack_mechanisms () =
  (* Each defense defeats its attack through its own mechanism. *)
  let r = Exploit.Garmr.run ~attack:Exploit.Garmr.Wrpkru_race ~defended:true ~seed () in
  Alcotest.(check bool) "wrpkru: killed by resume re-verification" true
    (r.Exploit.Garmr.g_resume_kills >= 1);
  Alcotest.(check bool) "wrpkru: kill message names the resume gate" true
    (contains ~sub:"resume gate" r.Exploit.Garmr.g_attacker_outcome);
  let r = Exploit.Garmr.run ~attack:Exploit.Garmr.Sigreturn_forge ~defended:true ~seed () in
  Alcotest.(check int) "sigreturn: scrubber blocked the forgery" 1
    r.Exploit.Garmr.g_sigreturn_blocked;
  Alcotest.(check int) "sigreturn: no forged restore took effect" 0
    r.Exploit.Garmr.g_sigreturn_forged;
  let r = Exploit.Garmr.run ~attack:Exploit.Garmr.Syscall_confusion ~defended:true ~seed () in
  Alcotest.(check bool) "syscall: the retag was refused" true r.Exploit.Garmr.g_refused;
  (match r.Exploit.Garmr.g_refusal with
  | Some msg -> Alcotest.(check bool) "syscall: refusal is EPERM" true (contains ~sub:"EPERM" msg)
  | None -> Alcotest.fail "expected a refusal message");
  (* Defense-in-depth: the desperate direct read died on the MPK check. *)
  Alcotest.(check bool) "syscall: direct read still killed" true r.Exploit.Garmr.g_killed

let test_battery_deterministic () =
  let run () =
    Util.Json.to_string
      (Exploit.Garmr.result_to_json
         (Exploit.Garmr.run ~attack:Exploit.Garmr.Wrpkru_race ~defended:true ~seed ()))
  in
  Alcotest.(check string) "identical replays" (run ()) (run ());
  (* The defended and undefended halves of one seed share every seeded
     parameter, so the pair isolates the defense under test. *)
  let details defended =
    (* [yields] is a measurement, not a seeded parameter — the defended
       attacker dies early, so only the inputs must match. *)
    List.filter
      (fun (k, _) -> k <> "yields")
      (Exploit.Garmr.run ~attack:Exploit.Garmr.Syscall_confusion ~defended ~seed ())
        .Exploit.Garmr.g_details
  in
  Alcotest.(check string) "halves share seeded parameters"
    (Util.Json.to_string (Util.Json.Obj (details false)))
    (Util.Json.to_string (Util.Json.Obj (details true)))

let test_chaos_adjudication () =
  let reports = Chaos.run_attacks ~harts:2 ~seed ()
  in
  Alcotest.(check int) "one report per attack class"
    (List.length Exploit.Garmr.all_attacks)
    (List.length reports);
  List.iter
    (fun r ->
      Alcotest.(check (list string))
        (Exploit.Garmr.attack_to_string r.Chaos.ar_attack ^ ": invariants hold")
        [] r.Chaos.ar_invariant_failures)
    reports

let test_battery_multi_hart () =
  (* More victims, same verdicts: the attack works against any number of
     benign sibling harts. *)
  let r = Exploit.Garmr.run ~harts:4 ~attack:Exploit.Garmr.Wrpkru_race ~defended:false ~seed () in
  Alcotest.(check bool) "undefended leaks at 4 harts" true (Exploit.Garmr.succeeded r);
  Alcotest.(check int) "three victims" 3 (List.length r.Exploit.Garmr.g_victim_outcomes);
  let r = Exploit.Garmr.run ~harts:4 ~attack:Exploit.Garmr.Wrpkru_race ~defended:true ~seed () in
  Alcotest.(check bool) "defended defeated at 4 harts" true (Exploit.Garmr.defeated r);
  List.iter
    (fun o -> Alcotest.(check string) "victims complete at 4 harts" "completed" o)
    r.Exploit.Garmr.g_victim_outcomes;
  match
    Exploit.Garmr.run ~harts:1 ~attack:Exploit.Garmr.Wrpkru_race ~defended:false ~seed ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected harts < 2 to be rejected"

(* --- Gate re-verification ------------------------------------------------- *)

(* Benign programs park mid-gate (resident in U) and at top level; the
   re-verification on every resume must pass — zero kills, and with the
   defense off, zero checks (the probe is invisible). *)
let test_reverify_no_false_positives () =
  let run defenses =
    let env = mk_env ~defenses () in
    let machine = Pkru_safe.Env.machine env in
    let program i =
      {
        Fleet.p_name = Printf.sprintf "benign-%d" i;
        p_body =
          (fun ~yield ->
            for _ = 1 to 3 do
              let addr = Pkru_safe.Env.malloc_untrusted env 64 in
              Pkru_safe.Env.ffi_call env (fun () ->
                  Sim.Machine.write_u64 machine addr 7;
                  yield ();
                  (* mid-gate, resident in U *)
                  ignore (Sim.Machine.read_u64 machine addr));
              yield ()
              (* top level, resident in T *)
            done);
      }
    in
    Fleet.run_programs env (List.init 3 program)
  in
  let off = run Pkru_safe.Config.no_defenses in
  Alcotest.(check int) "defense off: no checks" 0 off.Fleet.b_resume_checks;
  let on = run { Pkru_safe.Config.no_defenses with gate_reverify = true } in
  Alcotest.(check bool) "defense on: resumes were checked" true (on.Fleet.b_resume_checks > 0);
  Alcotest.(check int) "defense on: no false kills" 0 on.Fleet.b_resume_kills;
  List.iter2
    (fun (a : Fleet.program_result) (b : Fleet.program_result) ->
      Alcotest.(check string) "every program completes" "completed"
        (Fleet.outcome_to_string b.Fleet.pr_outcome);
      Alcotest.(check int) "defense on charges no cycles" a.Fleet.pr_cycles b.Fleet.pr_cycles)
    off.Fleet.b_programs on.Fleet.b_programs

let test_reverify_unit () =
  let env = mk_env () in
  let machine = Pkru_safe.Env.machine env in
  let gate = Pkru_safe.Env.gate env in
  (* A fresh hart matches the gate's resident view: reverify passes. *)
  Runtime.Gate.reverify gate;
  Alcotest.(check bool) "resident view starts all-enabled" true
    (Mpk.Pkru.equal (Runtime.Gate.resident_view gate) Mpk.Pkru.all_enabled);
  (* Corrupt the live PKRU out from under the gate: reverify kills. *)
  Sim.Cpu.set_pkru machine.Sim.Machine.cpu (Mpk.Pkru.all_disabled_except []);
  (match Runtime.Gate.reverify ~attack:"unit-probe" gate with
  | exception Sim.Signals.Process_killed msg ->
    Alcotest.(check bool) "kill names the resume gate" true (contains ~sub:"resume gate" msg);
    Alcotest.(check bool) "kill names the hart" true (contains ~sub:"(hart" msg)
  | () -> Alcotest.fail "expected reverify to kill on a PKRU mismatch");
  Sim.Cpu.set_pkru machine.Sim.Machine.cpu Mpk.Pkru.all_enabled

(* --- Telemetry exclusivity and handler tampering under the fleet --------- *)

let test_guard_held_and_handler_tamper () =
  (* While the battery scheduler runs, the telemetry guard is held: a
     program that tries to install a process-wide writer races the fleet
     and must be refused.  The same program then tampers with the SEGV
     handler chain (register + reorder) — benign siblings survive it. *)
  let env = mk_env () in
  let machine = Pkru_safe.Env.machine env in
  let signals = machine.Sim.Machine.signals in
  let guard_seen = ref None in
  let install_refused = ref false in
  let tamperer =
    {
      Fleet.p_name = "tamperer";
      p_body =
        (fun ~yield ->
          guard_seen := Telemetry.Guard.held ();
          (match Telemetry.Sink.with_sink (Telemetry.Sink.create ()) (fun () -> ()) with
          | () -> ()
          | exception Invalid_argument _ -> install_refused := true);
          yield ();
          Sim.Signals.register_segv signals (fun _ -> Sim.Signals.Pass);
          Sim.Signals.reorder_segv signals List.rev;
          yield ();
          ignore (Sim.Signals.unregister_segv signals));
    }
  in
  let victim =
    {
      Fleet.p_name = "victim";
      p_body =
        (fun ~yield ->
          for _ = 1 to 4 do
            let addr = Pkru_safe.Env.malloc_untrusted env 64 in
            Pkru_safe.Env.ffi_call env (fun () ->
                Sim.Machine.write_u64 machine addr 9;
                yield ();
                ignore (Sim.Machine.read_u64 machine addr));
            Allocators.Pkalloc.dealloc (Pkru_safe.Env.pkalloc env) addr
          done);
    }
  in
  let battery = Fleet.run_programs env [ victim; tamperer ] in
  (match !guard_seen with
  | Some label ->
    Alcotest.(check bool) "guard label names the battery" true
      (contains ~sub:"attack battery" label)
  | None -> Alcotest.fail "expected the telemetry guard to be held mid-run");
  Alcotest.(check bool) "mid-run sink install refused" true !install_refused;
  List.iter
    (fun (pr : Fleet.program_result) ->
      Alcotest.(check string)
        (pr.Fleet.pr_name ^ " completes")
        "completed"
        (Fleet.outcome_to_string pr.Fleet.pr_outcome))
    battery.Fleet.b_programs;
  (* The tamperer's chain surgery left no handlers behind. *)
  Alcotest.(check int) "handler chain restored" 0 (Sim.Signals.segv_handler_count signals)

(* --- Sigframe scrubbing (unit) ------------------------------------------- *)

let region_base = 0x10_0000

let machine_with_region () =
  let m = Sim.Machine.create () in
  (match
     Vmm.Page_table.reserve m.Sim.Machine.page_table ~base:region_base
       ~size:(4 * Vmm.Layout.page_size) ~prot:Vmm.Prot.read_write ~pkey:(Mpk.Pkey.of_int 1)
   with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  m

let test_sigreturn_forgery_unit () =
  (* Scrubbing off: a tampered frame silently installs the forged PKRU
     at sigreturn and the re-executed read succeeds. *)
  let m = machine_with_region () in
  let signals = m.Sim.Machine.signals in
  Sim.Machine.write_u64 m region_base 77;
  m.Sim.Machine.cpu.Sim.Cpu.pkru <- Mpk.Pkru.all_disabled_except [];
  Sim.Signals.register_segv signals (fun _ -> Sim.Signals.Retry);
  Sim.Signals.tamper_sigframe signals (Some Mpk.Pkru.all_enabled);
  Alcotest.(check int) "forged restore lets the read through" 77
    (Sim.Machine.read_u64 m region_base);
  Alcotest.(check int) "forgery counted" 1 (Sim.Signals.sigreturn_forged signals);
  Alcotest.(check int) "nothing blocked" 0 (Sim.Signals.sigreturn_blocked signals);
  Alcotest.(check bool) "forged PKRU installed on the hart" true
    (Mpk.Pkru.equal m.Sim.Machine.cpu.Sim.Cpu.pkru Mpk.Pkru.all_enabled)

let test_sigreturn_scrub_blocks () =
  let m = machine_with_region () in
  let signals = m.Sim.Machine.signals in
  Sim.Machine.write_u64 m region_base 77;
  m.Sim.Machine.cpu.Sim.Cpu.pkru <- Mpk.Pkru.all_disabled_except [];
  Sim.Signals.set_sigframe_scrub signals true;
  Sim.Signals.register_segv signals (fun _ -> Sim.Signals.Retry);
  Sim.Signals.tamper_sigframe signals (Some Mpk.Pkru.all_enabled);
  (match Sim.Machine.read_u64 m region_base with
  | exception Sim.Signals.Process_killed msg ->
    Alcotest.(check bool) "kill names the forged PKRU" true (contains ~sub:"forged PKRU" msg);
    Alcotest.(check bool) "kill names the hart" true (contains ~sub:"(hart" msg)
  | v -> Alcotest.fail (Printf.sprintf "scrubbed sigreturn let the read through (%d)" v));
  Alcotest.(check int) "block counted" 1 (Sim.Signals.sigreturn_blocked signals);
  Alcotest.(check int) "no forgery took effect" 0 (Sim.Signals.sigreturn_forged signals);
  (* An untampered frame passes through the scrubber untouched. *)
  Sim.Signals.tamper_sigframe signals None;
  m.Sim.Machine.cpu.Sim.Cpu.pkru <- Mpk.Pkru.all_enabled;
  Alcotest.(check int) "clean frames unaffected" 77 (Sim.Machine.read_u64 m region_base)

(* --- Syscall filter (unit) ------------------------------------------------ *)

let trusted = Mpk.Pkey.of_int 1

let test_syscall_filter_unit () =
  let m = machine_with_region () in
  (* Disarmed: the kernel interface forwards straight to the VMM. *)
  (match Sim.Machine.sys_pkey_mprotect m ~base:region_base ~size:Vmm.Layout.page_size trusted with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("disarmed filter refused a retag: " ^ msg));
  Sim.Machine.set_syscall_filter m (Some trusted);
  Alcotest.(check bool) "filter armed" true (Sim.Machine.syscall_filter m <> None);
  (* Trusted residency (PKRU can read the trusted key): still allowed. *)
  (match Sim.Machine.sys_pkey_mprotect m ~base:region_base ~size:Vmm.Layout.page_size trusted with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("armed filter refused a trusted retag: " ^ msg));
  (* Untrusted residency: every pkey/page-table mutation is EPERM. *)
  m.Sim.Machine.cpu.Sim.Cpu.pkru <- Mpk.Pkru.all_disabled_except [];
  let check_refused name = function
    | Ok _ -> Alcotest.fail (name ^ ": expected EPERM from U residency")
    | Error msg ->
      Alcotest.(check bool) (name ^ " is EPERM") true (contains ~sub:"EPERM" msg);
      Alcotest.(check bool) (name ^ " names the hart") true (contains ~sub:"(hart" msg)
  in
  check_refused "pkey_mprotect"
    (Sim.Machine.sys_pkey_mprotect m ~base:region_base ~size:Vmm.Layout.page_size
       Mpk.Pkey.default);
  check_refused "mprotect"
    (Sim.Machine.sys_mprotect m ~base:region_base ~size:Vmm.Layout.page_size
       Vmm.Prot.read_write);
  check_refused "pkey_alloc" (Sim.Machine.sys_pkey_alloc m);
  check_refused "pkey_free" (Sim.Machine.sys_pkey_free m trusted);
  (* Back in T, the same requests go through again. *)
  m.Sim.Machine.cpu.Sim.Cpu.pkru <- Mpk.Pkru.all_enabled;
  (match Sim.Machine.sys_pkey_mprotect m ~base:region_base ~size:Vmm.Layout.page_size trusted with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("post-U trusted retag refused: " ^ msg))

let test_defenses_config () =
  Alcotest.(check string) "none renders as none" "none"
    (Pkru_safe.Config.defenses_to_string Pkru_safe.Config.no_defenses);
  Alcotest.(check bool) "all_defenses arms everything" true
    (Pkru_safe.Config.all_defenses = all_on);
  (* Defaults: a plain env arms nothing. *)
  let env = mk_env () in
  let machine = Pkru_safe.Env.machine env in
  Alcotest.(check bool) "filter off by default" true (Sim.Machine.syscall_filter machine = None);
  Alcotest.(check bool) "scrub off by default" false
    (Sim.Signals.sigframe_scrub machine.Sim.Machine.signals);
  (* An armed env wires the machine-level defenses at create time. *)
  let env = mk_env ~defenses:all_on () in
  let machine = Pkru_safe.Env.machine env in
  Alcotest.(check bool) "filter armed by config" true
    (Sim.Machine.syscall_filter machine <> None);
  Alcotest.(check bool) "scrub armed by config" true
    (Sim.Signals.sigframe_scrub machine.Sim.Machine.signals)

let suite =
  [
    Alcotest.test_case "undefended attacks leak" `Quick test_undefended_attacks_leak;
    Alcotest.test_case "defended attacks defeated" `Quick test_defended_attacks_defeated;
    Alcotest.test_case "defense mechanisms" `Quick test_defended_attack_mechanisms;
    Alcotest.test_case "battery deterministic" `Quick test_battery_deterministic;
    Alcotest.test_case "chaos adjudication" `Quick test_chaos_adjudication;
    Alcotest.test_case "multi-hart battery" `Quick test_battery_multi_hart;
    Alcotest.test_case "reverify: no false positives" `Quick test_reverify_no_false_positives;
    Alcotest.test_case "reverify: unit" `Quick test_reverify_unit;
    Alcotest.test_case "guard held + handler tamper" `Quick test_guard_held_and_handler_tamper;
    Alcotest.test_case "sigreturn forgery (unit)" `Quick test_sigreturn_forgery_unit;
    Alcotest.test_case "sigreturn scrub blocks" `Quick test_sigreturn_scrub_blocks;
    Alcotest.test_case "syscall filter (unit)" `Quick test_syscall_filter_unit;
    Alcotest.test_case "defense config wiring" `Quick test_defenses_config;
  ]
