(* Tests for the telemetry subsystem: event counts against the gate's own
   transition counter, ring-buffer eviction order, non-perturbation of
   measurements, and Chrome-trace round-tripping. *)

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.fail msg

let small_bench =
  Workloads.Bench_def.bench ~page:(Workloads.Dom_scripts.page ~rows:4) "telemetry-bench"
    (Workloads.Dom_scripts.dom_attr ~iters:8)

let bench_profile () =
  Workloads.Runner.profile_suite
    { Workloads.Bench_def.suite_name = "telemetry"; benches = [ small_bench ] }

(* (1) Every gate side emits exactly one event, so the sink's gate-event
   count must equal the environment's transition counter — the invariant
   the Chrome exporter's slice count rests on. *)
let test_gate_events_match_transitions () =
  let env = ok (Pkru_safe.Env.create (Pkru_safe.Config.make Pkru_safe.Config.Mpk)) in
  let sink = Telemetry.Sink.create () in
  Telemetry.Sink.with_sink sink (fun () ->
      for _ = 1 to 17 do
        Pkru_safe.Env.ffi_call env (fun () ->
            ignore (Pkru_safe.Env.callback env (fun () -> ())))
      done);
  Alcotest.(check int) "transitions" (17 * 4) (Pkru_safe.Env.transitions env);
  Alcotest.(check int) "gate events = transitions" (Pkru_safe.Env.transitions env)
    (Telemetry.Sink.gate_transitions sink);
  Alcotest.(check int) "enter = exit" (Telemetry.Sink.count sink "gate_enter")
    (Telemetry.Sink.count sink "gate_exit");
  (* Each gate side executes one WRPKRU. *)
  Alcotest.(check int) "wrpkru events" (Pkru_safe.Env.transitions env)
    (Telemetry.Sink.count sink "wrpkru")

let test_gate_events_match_on_workload () =
  let m =
    Workloads.Runner.run_config ~telemetry:true ~mode:Pkru_safe.Config.Mpk
      ~profile:(bench_profile ()) small_bench
  in
  let sink = Option.get m.Workloads.Runner.trace in
  Alcotest.(check bool) "workload transitions nonzero" true (m.Workloads.Runner.transitions > 0);
  Alcotest.(check int) "gate events = measurement transitions" m.Workloads.Runner.transitions
    (Telemetry.Sink.gate_transitions sink)

(* (2) The ring drops oldest-first at capacity. *)
let test_ring_drops_oldest_first () =
  let ring = Telemetry.Ring.create ~capacity:4 in
  for i = 1 to 10 do
    Telemetry.Ring.push ring i
  done;
  Alcotest.(check (list int)) "keeps newest, oldest first" [ 7; 8; 9; 10 ]
    (Telemetry.Ring.to_list ring);
  Alcotest.(check int) "dropped count" 6 (Telemetry.Ring.dropped ring);
  Alcotest.(check int) "length capped" 4 (Telemetry.Ring.length ring)

let test_ring_partial_fill () =
  let ring = Telemetry.Ring.create ~capacity:8 in
  List.iter (Telemetry.Ring.push ring) [ 1; 2; 3 ];
  Alcotest.(check (list int)) "oldest first before wrap" [ 1; 2; 3 ]
    (Telemetry.Ring.to_list ring);
  Alcotest.(check int) "nothing dropped" 0 (Telemetry.Ring.dropped ring)

let test_sink_ring_eviction () =
  let sink = Telemetry.Sink.create ~capacity:3 () in
  for i = 1 to 5 do
    Telemetry.Sink.emit sink ~ts:i ~cpu:0 (Telemetry.Event.Wrpkru { value = i })
  done;
  Alcotest.(check int) "events_total counts evicted" 5 (Telemetry.Sink.events_total sink);
  Alcotest.(check (list int)) "trace keeps newest" [ 3; 4; 5 ]
    (List.map (fun (r : Telemetry.Event.record) -> r.Telemetry.Event.ts)
       (Telemetry.Sink.events sink))

(* (3) Telemetry must not perturb measurements: a disabled-sink run equals
   the seed behaviour, and an enabled sink — or an enabled cycle sampler —
   charges no simulated cycles.  All measurement fields the paper's tables
   derive from must be bit-identical across all four runs. *)
let test_disabled_sink_identical_measurements () =
  let profile = bench_profile () in
  let strip (m : Workloads.Runner.measurement) =
    ( m.Workloads.Runner.cycles,
      m.Workloads.Runner.transitions,
      m.Workloads.Runner.pct_mu,
      m.Workloads.Runner.mt_bytes,
      m.Workloads.Runner.mu_bytes,
      m.Workloads.Runner.output )
  in
  let run ?sample_every telemetry =
    strip
      (Workloads.Runner.run_config ~telemetry ?sample_every ~mode:Pkru_safe.Config.Mpk ~profile
         small_bench)
  in
  let off1 = run false in
  let off2 = run false in
  let on = run true in
  let sampled = run ~sample_every:32 true in
  Alcotest.(check bool) "disabled runs identical" true (off1 = off2);
  Alcotest.(check bool) "enabled run does not perturb" true (off1 = on);
  Alcotest.(check bool) "sampled run does not perturb" true (off1 = sampled)

(* (4) The Chrome trace export must be valid JSON that round-trips through
   our own parser, with one slice record per gate transition. *)
let test_chrome_trace_roundtrip () =
  let m =
    Workloads.Runner.run_config ~telemetry:true ~mode:Pkru_safe.Config.Mpk
      ~profile:(bench_profile ()) small_bench
  in
  let sink = Option.get m.Workloads.Runner.trace in
  let rendered = Util.Json.to_string_pretty (Telemetry.Export.chrome_trace sink) in
  let parsed = Util.Json.of_string rendered in
  let records = Util.Json.to_list (Util.Json.member "traceEvents" parsed) in
  Alcotest.(check int) "record count" (List.length (Telemetry.Sink.events sink))
    (List.length records);
  let gate_records =
    List.filter
      (fun r -> Util.Json.to_str (Util.Json.member "cat" r) = "gate")
      records
  in
  Alcotest.(check int) "gate slice records = transitions" m.Workloads.Runner.transitions
    (List.length gate_records);
  (* B/E slices must balance for the viewer to nest them. *)
  let phase ph =
    List.length
      (List.filter (fun r -> Util.Json.to_str (Util.Json.member "ph" r) = ph) gate_records)
  in
  Alcotest.(check int) "balanced slices" (phase "B") (phase "E")

let test_summary_json_roundtrip () =
  let m =
    Workloads.Runner.run_config ~telemetry:true ~mode:Pkru_safe.Config.Mpk
      ~profile:(bench_profile ()) small_bench
  in
  let sink = Option.get m.Workloads.Runner.trace in
  let parsed = Util.Json.of_string (Util.Json.to_string (Telemetry.Export.summary_json sink)) in
  Alcotest.(check int) "gate_transitions field" (Telemetry.Sink.gate_transitions sink)
    (Util.Json.to_int (Util.Json.member "gate_transitions" parsed))

let test_histogram_buckets_and_percentiles () =
  let h = Telemetry.Histogram.create () in
  List.iter (Telemetry.Histogram.observe h) [ 0; 1; 2; 3; 4; 8; 100; 1000 ];
  Alcotest.(check int) "count" 8 (Telemetry.Histogram.count h);
  Alcotest.(check int) "min" 0 (Telemetry.Histogram.min_value h);
  Alcotest.(check int) "max" 1000 (Telemetry.Histogram.max_value h);
  Alcotest.(check int) "bucket of 0" 0 (Telemetry.Histogram.bucket_of 0);
  Alcotest.(check int) "bucket of 1" 0 (Telemetry.Histogram.bucket_of 1);
  Alcotest.(check int) "bucket of 2" 1 (Telemetry.Histogram.bucket_of 2);
  Alcotest.(check int) "bucket of 1000" 9 (Telemetry.Histogram.bucket_of 1000);
  Alcotest.(check bool) "p50 within range" true
    (let p = Telemetry.Histogram.percentile h 50.0 in
     p >= 0.0 && p <= 1000.0);
  Alcotest.(check (float 1e-9)) "p100 is max" 1000.0 (Telemetry.Histogram.percentile h 100.0)

(* An empty histogram has no percentiles: like Util.Stats.percentile, the
   query raises rather than inventing a 0. *)
let test_empty_histogram_percentile_raises () =
  let h = Telemetry.Histogram.create () in
  Alcotest.check_raises "empty percentile"
    (Invalid_argument "Histogram.percentile: empty histogram") (fun () ->
      ignore (Telemetry.Histogram.percentile h 50.0));
  Telemetry.Histogram.observe h 7;
  Alcotest.(check (float 1e-9)) "defined once non-empty" 7.0
    (Telemetry.Histogram.percentile h 50.0)

let test_with_sink_restores () =
  Alcotest.(check bool) "inactive by default" false (Telemetry.Sink.active ());
  let sink = Telemetry.Sink.create () in
  (try Telemetry.Sink.with_sink sink (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check bool) "restored after raise" false (Telemetry.Sink.active ())

let suite =
  [
    Alcotest.test_case "gate events match transitions" `Quick test_gate_events_match_transitions;
    Alcotest.test_case "gate events match on workload" `Quick test_gate_events_match_on_workload;
    Alcotest.test_case "ring drops oldest first" `Quick test_ring_drops_oldest_first;
    Alcotest.test_case "ring partial fill" `Quick test_ring_partial_fill;
    Alcotest.test_case "sink ring eviction" `Quick test_sink_ring_eviction;
    Alcotest.test_case "disabled sink identical measurements" `Quick
      test_disabled_sink_identical_measurements;
    Alcotest.test_case "chrome trace round-trips" `Quick test_chrome_trace_roundtrip;
    Alcotest.test_case "summary json round-trips" `Quick test_summary_json_roundtrip;
    Alcotest.test_case "histogram buckets/percentiles" `Quick
      test_histogram_buckets_and_percentiles;
    Alcotest.test_case "empty histogram percentile raises" `Quick
      test_empty_histogram_percentile_raises;
    Alcotest.test_case "with_sink restores on raise" `Quick test_with_sink_restores;
  ]
