(* Tests for the telemetry subsystem: event counts against the gate's own
   transition counter, ring-buffer eviction order, non-perturbation of
   measurements, and Chrome-trace round-tripping. *)

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.fail msg

let small_bench =
  Workloads.Bench_def.bench ~page:(Workloads.Dom_scripts.page ~rows:4) "telemetry-bench"
    (Workloads.Dom_scripts.dom_attr ~iters:8)

let bench_profile () =
  Workloads.Runner.profile_suite
    { Workloads.Bench_def.suite_name = "telemetry"; benches = [ small_bench ] }

(* (1) Every gate side emits exactly one event, so the sink's gate-event
   count must equal the environment's transition counter — the invariant
   the Chrome exporter's slice count rests on. *)
let test_gate_events_match_transitions () =
  let env = ok (Pkru_safe.Env.create (Pkru_safe.Config.make Pkru_safe.Config.Mpk)) in
  let sink = Telemetry.Sink.create () in
  Telemetry.Sink.with_sink sink (fun () ->
      for _ = 1 to 17 do
        Pkru_safe.Env.ffi_call env (fun () ->
            ignore (Pkru_safe.Env.callback env (fun () -> ())))
      done);
  Alcotest.(check int) "transitions" (17 * 4) (Pkru_safe.Env.transitions env);
  Alcotest.(check int) "gate events = transitions" (Pkru_safe.Env.transitions env)
    (Telemetry.Sink.gate_transitions sink);
  Alcotest.(check int) "enter = exit" (Telemetry.Sink.count sink "gate_enter")
    (Telemetry.Sink.count sink "gate_exit");
  (* Each gate side executes one WRPKRU. *)
  Alcotest.(check int) "wrpkru events" (Pkru_safe.Env.transitions env)
    (Telemetry.Sink.count sink "wrpkru")

let test_gate_events_match_on_workload () =
  let m =
    Workloads.Runner.run_config ~telemetry:true ~mode:Pkru_safe.Config.Mpk
      ~profile:(bench_profile ()) small_bench
  in
  let sink = Option.get m.Workloads.Runner.trace in
  Alcotest.(check bool) "workload transitions nonzero" true (m.Workloads.Runner.transitions > 0);
  Alcotest.(check int) "gate events = measurement transitions" m.Workloads.Runner.transitions
    (Telemetry.Sink.gate_transitions sink)

(* (2) The ring drops oldest-first at capacity. *)
let test_ring_drops_oldest_first () =
  let ring = Telemetry.Ring.create ~capacity:4 in
  for i = 1 to 10 do
    Telemetry.Ring.push ring i
  done;
  Alcotest.(check (list int)) "keeps newest, oldest first" [ 7; 8; 9; 10 ]
    (Telemetry.Ring.to_list ring);
  Alcotest.(check int) "dropped count" 6 (Telemetry.Ring.dropped ring);
  Alcotest.(check int) "length capped" 4 (Telemetry.Ring.length ring)

let test_ring_partial_fill () =
  let ring = Telemetry.Ring.create ~capacity:8 in
  List.iter (Telemetry.Ring.push ring) [ 1; 2; 3 ];
  Alcotest.(check (list int)) "oldest first before wrap" [ 1; 2; 3 ]
    (Telemetry.Ring.to_list ring);
  Alcotest.(check int) "nothing dropped" 0 (Telemetry.Ring.dropped ring)

let test_sink_ring_eviction () =
  let sink = Telemetry.Sink.create ~capacity:3 () in
  for i = 1 to 5 do
    Telemetry.Sink.emit sink ~ts:i ~cpu:0 (Telemetry.Event.Wrpkru { value = i })
  done;
  Alcotest.(check int) "events_total counts evicted" 5 (Telemetry.Sink.events_total sink);
  Alcotest.(check (list int)) "trace keeps newest" [ 3; 4; 5 ]
    (List.map (fun (r : Telemetry.Event.record) -> r.Telemetry.Event.ts)
       (Telemetry.Sink.events sink))

(* (3) Telemetry must not perturb measurements: a disabled-sink run equals
   the seed behaviour, and an enabled sink — or an enabled cycle sampler —
   charges no simulated cycles.  All measurement fields the paper's tables
   derive from must be bit-identical across all four runs. *)
let test_disabled_sink_identical_measurements () =
  let profile = bench_profile () in
  let strip (m : Workloads.Runner.measurement) =
    ( m.Workloads.Runner.cycles,
      m.Workloads.Runner.transitions,
      m.Workloads.Runner.pct_mu,
      m.Workloads.Runner.mt_bytes,
      m.Workloads.Runner.mu_bytes,
      m.Workloads.Runner.output )
  in
  let run ?sample_every telemetry =
    strip
      (Workloads.Runner.run_config ~telemetry ?sample_every ~mode:Pkru_safe.Config.Mpk ~profile
         small_bench)
  in
  let off1 = run false in
  let off2 = run false in
  let on = run true in
  let sampled = run ~sample_every:32 true in
  Alcotest.(check bool) "disabled runs identical" true (off1 = off2);
  Alcotest.(check bool) "enabled run does not perturb" true (off1 = on);
  Alcotest.(check bool) "sampled run does not perturb" true (off1 = sampled)

(* (4) The Chrome trace export must be valid JSON that round-trips through
   our own parser, with one slice record per gate transition plus one
   span slice per recorded causal span (on its own pid). *)
let test_chrome_trace_roundtrip () =
  let m =
    Workloads.Runner.run_config ~telemetry:true ~mode:Pkru_safe.Config.Mpk
      ~profile:(bench_profile ()) small_bench
  in
  let sink = Option.get m.Workloads.Runner.trace in
  let spans = Telemetry.Sink.spans sink in
  let span_count =
    List.length (Telemetry.Span.closed spans) + List.length (Telemetry.Span.open_spans spans)
  in
  let rendered = Util.Json.to_string_pretty (Telemetry.Export.chrome_trace sink) in
  let parsed = Util.Json.of_string rendered in
  let records = Util.Json.to_list (Util.Json.member "traceEvents" parsed) in
  Alcotest.(check int) "record count"
    (List.length (Telemetry.Sink.events sink) + span_count)
    (List.length records);
  let gate_records =
    List.filter
      (fun r -> Util.Json.to_str (Util.Json.member "cat" r) = "gate")
      records
  in
  Alcotest.(check int) "gate slice records = transitions" m.Workloads.Runner.transitions
    (List.length gate_records);
  (* B/E slices must balance for the viewer to nest them. *)
  let phase ph =
    List.length
      (List.filter (fun r -> Util.Json.to_str (Util.Json.member "ph" r) = ph) gate_records)
  in
  Alcotest.(check int) "balanced slices" (phase "B") (phase "E");
  (* Span slices: separate track (pid 1), all closed spans complete (X)
     with a dur, every record carrying its span id and parent. *)
  let span_records =
    List.filter
      (fun r ->
        let cat = Util.Json.to_str (Util.Json.member "cat" r) in
        String.length cat >= 5 && String.sub cat 0 5 = "span:")
      records
  in
  Alcotest.(check int) "span slice records = spans" span_count (List.length span_records);
  List.iter
    (fun r ->
      Alcotest.(check int) "span pid" 1 (Util.Json.to_int (Util.Json.member "pid" r));
      if Util.Json.to_str (Util.Json.member "ph" r) = "X" then
        Alcotest.(check bool) "X slice has dur" true
          (Util.Json.to_int (Util.Json.member "dur" r) >= 0))
    span_records;
  (* Span nesting survives the round-trip: rebuild the (id -> parent) map
     from the re-parsed args and compare against the live store. *)
  let parsed_parents =
    List.map
      (fun r ->
        let args = Util.Json.member "args" r in
        (Util.Json.to_int (Util.Json.member "id" args),
         Util.Json.to_int (Util.Json.member "parent" args)))
      span_records
    |> List.sort compare
  in
  let live_parents =
    List.map
      (fun (r : Telemetry.Span.record) -> (r.Telemetry.Span.id, r.Telemetry.Span.parent))
      (Telemetry.Span.closed spans @ Telemetry.Span.open_spans spans)
    |> List.sort compare
  in
  Alcotest.(check bool) "span nesting round-trips" true (parsed_parents = live_parents)

let test_summary_json_roundtrip () =
  let m =
    Workloads.Runner.run_config ~telemetry:true ~mode:Pkru_safe.Config.Mpk
      ~profile:(bench_profile ()) small_bench
  in
  let sink = Option.get m.Workloads.Runner.trace in
  let parsed = Util.Json.of_string (Util.Json.to_string (Telemetry.Export.summary_json sink)) in
  Alcotest.(check int) "gate_transitions field" (Telemetry.Sink.gate_transitions sink)
    (Util.Json.to_int (Util.Json.member "gate_transitions" parsed))

let test_histogram_buckets_and_percentiles () =
  let h = Telemetry.Histogram.create () in
  List.iter (Telemetry.Histogram.observe h) [ 0; 1; 2; 3; 4; 8; 100; 1000 ];
  Alcotest.(check int) "count" 8 (Telemetry.Histogram.count h);
  Alcotest.(check int) "min" 0 (Telemetry.Histogram.min_value h);
  Alcotest.(check int) "max" 1000 (Telemetry.Histogram.max_value h);
  Alcotest.(check int) "bucket of 0" 0 (Telemetry.Histogram.bucket_of 0);
  Alcotest.(check int) "bucket of 1" 0 (Telemetry.Histogram.bucket_of 1);
  Alcotest.(check int) "bucket of 2" 1 (Telemetry.Histogram.bucket_of 2);
  Alcotest.(check int) "bucket of 1000" 9 (Telemetry.Histogram.bucket_of 1000);
  Alcotest.(check bool) "p50 within range" true
    (let p = Telemetry.Histogram.percentile h 50.0 in
     p >= 0.0 && p <= 1000.0);
  Alcotest.(check (float 1e-9)) "p100 is max" 1000.0 (Telemetry.Histogram.percentile h 100.0)

(* An empty histogram has no percentiles: like Util.Stats.percentile, the
   query raises rather than inventing a 0. *)
let test_empty_histogram_percentile_raises () =
  let h = Telemetry.Histogram.create () in
  Alcotest.check_raises "empty percentile"
    (Invalid_argument "Histogram.percentile: empty histogram") (fun () ->
      ignore (Telemetry.Histogram.percentile h 50.0));
  Telemetry.Histogram.observe h 7;
  Alcotest.(check (float 1e-9)) "defined once non-empty" 7.0
    (Telemetry.Histogram.percentile h 50.0)

let test_with_sink_restores () =
  Alcotest.(check bool) "inactive by default" false (Telemetry.Sink.active ());
  let sink = Telemetry.Sink.create () in
  (try Telemetry.Sink.with_sink sink (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check bool) "restored after raise" false (Telemetry.Sink.active ())

(* (5) Causal spans: parenting, exit-by-id unwind coherence, digesting. *)
let test_span_nesting () =
  let spans = Telemetry.Span.create () in
  let a = Telemetry.Span.enter spans ~ts:10 ~cpu:0 ~kind:Telemetry.Span.Phase "outer" in
  let b = Telemetry.Span.enter spans ~ts:20 ~cpu:0 ~kind:Telemetry.Span.Gate "inner" in
  let i = Telemetry.Span.instant spans ~ts:25 ~cpu:0 ~kind:Telemetry.Span.Incident "blip" in
  (* A different hart opens its own root — stacks are per-cpu. *)
  let other = Telemetry.Span.enter spans ~ts:21 ~cpu:1 ~kind:Telemetry.Span.Chaos "elsewhere" in
  let by_id id =
    List.find
      (fun (r : Telemetry.Span.record) -> r.Telemetry.Span.id = id)
      (Telemetry.Span.closed spans @ Telemetry.Span.open_spans spans)
  in
  Alcotest.(check int) "root has no parent" 0 (by_id a).Telemetry.Span.parent;
  Alcotest.(check int) "inner parented under outer" a (by_id b).Telemetry.Span.parent;
  Alcotest.(check int) "instant parented under innermost" b (by_id i).Telemetry.Span.parent;
  Alcotest.(check int) "other hart is a root" 0 (by_id other).Telemetry.Span.parent;
  Alcotest.(check (list int)) "open chain root first" [ a; b ]
    (List.map
       (fun (r : Telemetry.Span.record) -> r.Telemetry.Span.id)
       (Telemetry.Span.open_chain spans ~cpu:0));
  (* Closing the OUTER span by id closes the abandoned inner span at the
     same timestamp — the exception-unwind case. *)
  Telemetry.Span.exit spans ~ts:40 ~cpu:0 ~id:a ();
  Alcotest.(check (list int)) "cpu0 stack empty" []
    (List.map
       (fun (r : Telemetry.Span.record) -> r.Telemetry.Span.id)
       (Telemetry.Span.open_chain spans ~cpu:0));
  Alcotest.(check int) "abandoned inner closed at unwind ts" 40 (by_id b).Telemetry.Span.t_end;
  Alcotest.(check int) "outer duration" 30 (Telemetry.Span.duration (by_id a));
  Alcotest.(check bool) "other hart still open" true (Telemetry.Span.is_open (by_id other));
  Alcotest.(check int) "opened_total" 4 (Telemetry.Span.opened_total spans);
  (* Digest is valid JSON carrying the accounting. *)
  let digest = Util.Json.of_string (Util.Json.to_string (Telemetry.Span.digest_json spans)) in
  Alcotest.(check int) "digest opened_total" 4
    (Util.Json.to_int (Util.Json.member "opened_total" digest));
  Alcotest.(check int) "digest open_now" 1
    (Util.Json.to_int (Util.Json.member "open_now" digest))

let test_span_exit_without_enter_is_noop () =
  let spans = Telemetry.Span.create () in
  Telemetry.Span.exit spans ~ts:5 ~cpu:0 ();
  Telemetry.Span.exit spans ~ts:5 ~cpu:0 ~id:42 ();
  Alcotest.(check int) "nothing closed" 0 (List.length (Telemetry.Span.closed spans));
  Alcotest.(check int) "nothing opened" 0 (Telemetry.Span.opened_total spans)

(* (6) Spans disabled must be invisible: same simulated cycles and the
   exact same event trace as a span-recording run. *)
let test_spans_disabled_bit_identical () =
  let profile = bench_profile () in
  let run record_spans =
    let env =
      ok (Pkru_safe.Env.create ~profile (Pkru_safe.Config.make Pkru_safe.Config.Mpk))
    in
    let sink = Telemetry.Sink.create ~record_spans () in
    let browser =
      Browser.create ~engine_seed:small_bench.Workloads.Bench_def.engine_seed env
    in
    Telemetry.Sink.with_sink sink (fun () ->
        Browser.load_page browser small_bench.Workloads.Bench_def.page;
        ignore (Browser.exec_script browser small_bench.Workloads.Bench_def.script));
    (Pkru_safe.Env.cycles env, Telemetry.Sink.events sink, Telemetry.Sink.counters sink, sink)
  in
  let cycles_on, events_on, counters_on, sink_on = run true in
  let cycles_off, events_off, counters_off, sink_off = run false in
  Alcotest.(check bool) "spans were recorded when enabled" true
    (Telemetry.Span.opened_total (Telemetry.Sink.spans sink_on) > 0);
  Alcotest.(check int) "no spans recorded when disabled" 0
    (Telemetry.Span.opened_total (Telemetry.Sink.spans sink_off));
  Alcotest.(check int) "cycles bit-identical" cycles_on cycles_off;
  Alcotest.(check bool) "event traces bit-identical" true (events_on = events_off);
  Alcotest.(check bool) "counters bit-identical" true (counters_on = counters_off)

(* (7) The trace.dropped satellite: ring eviction is a visible counter. *)
let test_trace_dropped_counter () =
  let sink = Telemetry.Sink.create ~capacity:3 () in
  Alcotest.(check int) "zero before overflow" 0 (Telemetry.Sink.count sink "trace.dropped");
  for i = 1 to 5 do
    Telemetry.Sink.emit sink ~ts:i ~cpu:0 (Telemetry.Event.Wrpkru { value = i })
  done;
  Alcotest.(check int) "counter equals ring dropped" (Telemetry.Sink.dropped sink)
    (Telemetry.Sink.count sink "trace.dropped");
  Alcotest.(check int) "two evictions" 2 (Telemetry.Sink.count sink "trace.dropped")

(* (8) The gate tail keeps only gate transitions, newest-N. *)
let test_gate_tail () =
  let sink = Telemetry.Sink.create ~gate_tail:4 () in
  for i = 1 to 6 do
    Telemetry.Sink.emit sink ~ts:i ~cpu:0
      (Telemetry.Event.Gate_enter { target = Telemetry.Event.Untrusted });
    Telemetry.Sink.emit sink ~ts:(100 + i) ~cpu:0 (Telemetry.Event.Wrpkru { value = i })
  done;
  let tail = Telemetry.Sink.gate_tail sink in
  Alcotest.(check int) "bounded" 4 (List.length tail);
  Alcotest.(check (list int)) "newest gate transitions, oldest first" [ 3; 4; 5; 6 ]
    (List.map (fun (r : Telemetry.Event.record) -> r.Telemetry.Event.ts) tail)

(* (9) Full JSON export round-trips through our parser, span records
   included, and Span.record_of_json inverts record_to_json. *)
let test_json_export_roundtrip () =
  let m =
    Workloads.Runner.run_config ~telemetry:true ~mode:Pkru_safe.Config.Mpk
      ~profile:(bench_profile ()) small_bench
  in
  let sink = Option.get m.Workloads.Runner.trace in
  let spans = Telemetry.Sink.spans sink in
  let parsed = Util.Json.of_string (Util.Json.to_string (Telemetry.Export.to_json sink)) in
  Alcotest.(check int) "events round-trip" (List.length (Telemetry.Sink.events sink))
    (List.length (Util.Json.to_list (Util.Json.member "events" parsed)));
  let parsed_spans = Util.Json.member "spans" parsed in
  let closed = Util.Json.to_list (Util.Json.member "closed" parsed_spans) in
  Alcotest.(check int) "closed spans round-trip" (List.length (Telemetry.Span.closed spans))
    (List.length closed);
  (* Each record parses back to exactly the source record. *)
  List.iter2
    (fun json (r : Telemetry.Span.record) ->
      let back = Telemetry.Span.record_of_json json in
      Alcotest.(check bool) "span record round-trips" true
        (back.Telemetry.Span.id = r.Telemetry.Span.id
        && back.Telemetry.Span.parent = r.Telemetry.Span.parent
        && back.Telemetry.Span.name = r.Telemetry.Span.name
        && back.Telemetry.Span.kind = r.Telemetry.Span.kind
        && back.Telemetry.Span.t_begin = r.Telemetry.Span.t_begin
        && back.Telemetry.Span.t_end = r.Telemetry.Span.t_end))
    closed (Telemetry.Span.closed spans);
  (* Gate spans must nest under the workload's phase spans: every
     gate-kind span has a non-root parent chain ending at a phase. *)
  let all = Telemetry.Span.closed spans @ Telemetry.Span.open_spans spans in
  let by_id id =
    List.find_opt (fun (r : Telemetry.Span.record) -> r.Telemetry.Span.id = id) all
  in
  let rec root (r : Telemetry.Span.record) =
    match by_id r.Telemetry.Span.parent with None -> r | Some p -> root p
  in
  let gate_spans =
    List.filter (fun (r : Telemetry.Span.record) -> r.Telemetry.Span.kind = Telemetry.Span.Gate) all
  in
  Alcotest.(check bool) "workload recorded gate spans" true (gate_spans <> []);
  List.iter
    (fun (g : Telemetry.Span.record) ->
      Alcotest.(check bool) "gate span roots at a phase" true
        ((root g).Telemetry.Span.kind = Telemetry.Span.Phase))
    gate_spans

(* (10) Prometheus exposition hardening: label-value escaping, label-name
   validation, and the spec spellings of non-finite values. *)
let test_prometheus_label_escaping () =
  let reg = Telemetry.Metrics.create () in
  Telemetry.Metrics.incr
    (Telemetry.Metrics.counter reg
       ~labels:[ ("site", "a\\b\"c\nd") ]
       "pkru_escape_test_total");
  let text = Telemetry.Metrics.expose reg in
  let expected = {|site="a\\b\"c\nd"|} in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "label value escaped per 0.0.4" true (contains text expected);
  Alcotest.(check bool) "no raw newline inside a sample line" true
    (List.for_all
       (fun line ->
         (* every non-empty line is a complete sample or comment *)
         line = "" || String.length line > 0)
       (String.split_on_char '\n' text));
  (* Help text escapes newlines too. *)
  let reg2 = Telemetry.Metrics.create () in
  ignore (Telemetry.Metrics.counter reg2 ~help:"line1\nline2" "pkru_help_test_total");
  Alcotest.(check bool) "help newline escaped" true
    (contains (Telemetry.Metrics.expose reg2) {|# HELP pkru_help_test_total line1\nline2|})

let test_prometheus_label_name_validation () =
  let reg = Telemetry.Metrics.create () in
  Alcotest.check_raises "invalid label name"
    (Invalid_argument "Metrics: invalid label name \"bad-name\"") (fun () ->
      ignore (Telemetry.Metrics.counter reg ~labels:[ ("bad-name", "v") ] "pkru_bad_total"));
  Alcotest.check_raises "reserved __ label name"
    (Invalid_argument "Metrics: invalid label name \"__reserved\"") (fun () ->
      ignore (Telemetry.Metrics.counter reg ~labels:[ ("__reserved", "v") ] "pkru_bad_total"))

let test_prometheus_nonfinite_rendering () =
  let reg = Telemetry.Metrics.create () in
  Telemetry.Metrics.set (Telemetry.Metrics.gauge reg "pkru_nan_gauge") Float.nan;
  Telemetry.Metrics.set (Telemetry.Metrics.gauge reg "pkru_posinf_gauge") Float.infinity;
  Telemetry.Metrics.set (Telemetry.Metrics.gauge reg "pkru_neginf_gauge") Float.neg_infinity;
  let lines = String.split_on_char '\n' (Telemetry.Metrics.expose reg) in
  let has line = List.mem line lines in
  Alcotest.(check bool) "NaN" true (has "pkru_nan_gauge NaN");
  Alcotest.(check bool) "+Inf" true (has "pkru_posinf_gauge +Inf");
  Alcotest.(check bool) "-Inf" true (has "pkru_neginf_gauge -Inf")

(* (11) The flight recorder: dump capture and the doctor rendering. *)
let test_flight_dump_and_render () =
  let sink = Telemetry.Sink.create () in
  let recorder = Telemetry.Flight.create () in
  Telemetry.Flight.attach_sink recorder sink;
  Telemetry.Flight.set_context recorder (fun () ->
      Util.Json.Obj
        [
          ("cycles", Util.Json.Int 777);
          ( "cpus",
            Util.Json.List
              [ Util.Json.Obj [ ("id", Util.Json.Int 0); ("pkru", Util.Json.Int 12) ] ] );
          ("gate_depth", Util.Json.Int 1);
        ]);
  Telemetry.Sink.emit sink ~ts:1 ~cpu:0
    (Telemetry.Event.Gate_enter { target = Telemetry.Event.Untrusted });
  ignore (Telemetry.Sink.span_enter sink ~ts:1 ~cpu:0 ~kind:Telemetry.Span.Gate "gate:untrusted");
  Telemetry.Flight.with_recorder recorder (fun () ->
      Telemetry.Flight.dump ~reason:"test incident"
        ~details:[ ("note", Util.Json.String "injected") ]
        ());
  Alcotest.(check int) "one dump" 1 (Telemetry.Flight.dump_total recorder);
  let dump = Option.get (Telemetry.Flight.last recorder) in
  (* Self-contained: survives serialise/parse, then renders. *)
  let dump = Util.Json.of_string (Util.Json.to_string dump) in
  Alcotest.(check string) "schema" Telemetry.Flight.schema_version
    (Util.Json.to_str (Util.Json.member "schema" dump));
  let report = Telemetry.Flight.render dump in
  let contains needle =
    let nl = String.length needle and hl = String.length report in
    let rec go i = i + nl <= hl && (String.sub report i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "reason rendered" true (contains "test incident");
  Alcotest.(check bool) "pkru rendered" true (contains "cpu0 PKRU = 0x0000000c");
  Alcotest.(check bool) "gate imbalance rendered" true (contains "IMBALANCED");
  Alcotest.(check bool) "open span chain rendered" true (contains "gate:untrusted");
  (* Disarmed dumps are no-ops. *)
  Telemetry.Flight.dump ~reason:"nobody listening" ();
  Alcotest.(check int) "still one dump" 1 (Telemetry.Flight.dump_total recorder)

let suite =
  [
    Alcotest.test_case "gate events match transitions" `Quick test_gate_events_match_transitions;
    Alcotest.test_case "gate events match on workload" `Quick test_gate_events_match_on_workload;
    Alcotest.test_case "ring drops oldest first" `Quick test_ring_drops_oldest_first;
    Alcotest.test_case "ring partial fill" `Quick test_ring_partial_fill;
    Alcotest.test_case "sink ring eviction" `Quick test_sink_ring_eviction;
    Alcotest.test_case "disabled sink identical measurements" `Quick
      test_disabled_sink_identical_measurements;
    Alcotest.test_case "chrome trace round-trips" `Quick test_chrome_trace_roundtrip;
    Alcotest.test_case "summary json round-trips" `Quick test_summary_json_roundtrip;
    Alcotest.test_case "histogram buckets/percentiles" `Quick
      test_histogram_buckets_and_percentiles;
    Alcotest.test_case "empty histogram percentile raises" `Quick
      test_empty_histogram_percentile_raises;
    Alcotest.test_case "with_sink restores on raise" `Quick test_with_sink_restores;
    Alcotest.test_case "span nesting and unwind" `Quick test_span_nesting;
    Alcotest.test_case "span exit without enter is no-op" `Quick
      test_span_exit_without_enter_is_noop;
    Alcotest.test_case "spans disabled bit-identical" `Quick test_spans_disabled_bit_identical;
    Alcotest.test_case "trace.dropped counter" `Quick test_trace_dropped_counter;
    Alcotest.test_case "gate tail ring" `Quick test_gate_tail;
    Alcotest.test_case "json export round-trips spans" `Quick test_json_export_roundtrip;
    Alcotest.test_case "prometheus label escaping" `Quick test_prometheus_label_escaping;
    Alcotest.test_case "prometheus label name validation" `Quick
      test_prometheus_label_name_validation;
    Alcotest.test_case "prometheus non-finite rendering" `Quick
      test_prometheus_nonfinite_rendering;
    Alcotest.test_case "flight dump and doctor render" `Quick test_flight_dump_and_render;
  ]
