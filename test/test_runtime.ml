(* Tests for the runtime library: AllocIds, metadata table, profiles,
   compartment stack, call gates and the profiler fault handler. *)

let key = Mpk.Pkey.of_int
let site n = Runtime.Alloc_id.synthetic n

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.fail msg

(* --- Alloc_id --- *)

let test_alloc_id_order_and_json () =
  let a = Runtime.Alloc_id.make ~func_id:1 ~block_id:2 ~call_id:3 in
  let b = Runtime.Alloc_id.make ~func_id:1 ~block_id:2 ~call_id:4 in
  Alcotest.(check bool) "ordered" true (Runtime.Alloc_id.compare a b < 0);
  Alcotest.(check bool) "equal" true
    (Runtime.Alloc_id.equal a (Runtime.Alloc_id.of_json (Runtime.Alloc_id.to_json a)));
  Alcotest.(check string) "printed" "alloc<1:2:3>" (Runtime.Alloc_id.to_string a)

(* --- Metadata --- *)

let test_metadata_interior_lookup () =
  let md = Runtime.Metadata.create () in
  Runtime.Metadata.on_alloc md ~addr:1000 ~size:64 ~alloc_id:(site 1);
  Runtime.Metadata.on_alloc md ~addr:2000 ~size:16 ~alloc_id:(site 2);
  (match Runtime.Metadata.lookup md 1063 with
  | Some r -> Alcotest.(check bool) "interior hit" true (Runtime.Alloc_id.equal r.Runtime.Metadata.alloc_id (site 1))
  | None -> Alcotest.fail "interior lookup failed");
  Alcotest.(check bool) "one past end misses" true (Runtime.Metadata.lookup md 1064 = None);
  Alcotest.(check bool) "gap misses" true (Runtime.Metadata.lookup md 1500 = None);
  Alcotest.(check bool) "below misses" true (Runtime.Metadata.lookup md 999 = None)

let test_metadata_realloc_keeps_id () =
  let md = Runtime.Metadata.create () in
  Runtime.Metadata.on_alloc md ~addr:1000 ~size:64 ~alloc_id:(site 7);
  Runtime.Metadata.on_realloc md ~old_addr:1000 ~new_addr:4096 ~new_size:128;
  Alcotest.(check bool) "old gone" true (Runtime.Metadata.lookup md 1000 = None);
  (match Runtime.Metadata.lookup md 4200 with
  | Some r ->
    Alcotest.(check bool) "id survives realloc" true
      (Runtime.Alloc_id.equal r.Runtime.Metadata.alloc_id (site 7))
  | None -> Alcotest.fail "new range not tracked");
  Runtime.Metadata.on_dealloc md ~addr:4096;
  Alcotest.(check int) "empty" 0 (Runtime.Metadata.live_count md)

let prop_metadata_matches_model =
  QCheck.Test.make ~count:50 ~name:"metadata lookup matches a naive model"
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Util.Rng.create seed in
      let md = Runtime.Metadata.create () in
      let model = Hashtbl.create 32 in
      let next_addr = ref 0x1000 in
      for i = 1 to 200 do
        match Util.Rng.int rng 3 with
        | 0 ->
          let size = 8 + Util.Rng.int rng 100 in
          let addr = !next_addr in
          next_addr := !next_addr + size + Util.Rng.int rng 64;
          Runtime.Metadata.on_alloc md ~addr ~size ~alloc_id:(site i);
          Hashtbl.replace model addr (size, site i)
        | 1 when Hashtbl.length model > 0 ->
          let keys = Hashtbl.fold (fun k _ acc -> k :: acc) model [] in
          let addr = List.nth keys (Util.Rng.int rng (List.length keys)) in
          Runtime.Metadata.on_dealloc md ~addr;
          Hashtbl.remove model addr
        | _ -> ()
      done;
      (* Compare lookups on random probes. *)
      let naive a =
        Hashtbl.fold
          (fun addr (size, id) acc -> if a >= addr && a < addr + size then Some id else acc)
          model None
      in
      List.for_all
        (fun _ ->
          let probe = Util.Rng.int rng !next_addr in
          let got = Option.map (fun r -> r.Runtime.Metadata.alloc_id) (Runtime.Metadata.lookup md probe) in
          (match (got, naive probe) with
          | None, None -> true
          | Some a, Some b -> Runtime.Alloc_id.equal a b
          | _ -> false))
        (List.init 100 Fun.id))

(* --- Profile --- *)

let test_profile_record_unique () =
  let p = Runtime.Profile.create () in
  Runtime.Profile.record p (site 1);
  Runtime.Profile.record p (site 1);
  Runtime.Profile.record p (site 2);
  Alcotest.(check int) "unique sites" 2 (Runtime.Profile.cardinal p);
  Alcotest.(check int) "hit count" 2 (Runtime.Profile.hit_count p (site 1))

let test_profile_json_roundtrip () =
  let p = Runtime.Profile.create () in
  Runtime.Profile.record p (Runtime.Alloc_id.make ~func_id:3 ~block_id:1 ~call_id:0);
  Runtime.Profile.record p (site 9);
  Runtime.Profile.record p (site 9);
  let p' = Runtime.Profile.of_json (Runtime.Profile.to_json p) in
  Alcotest.(check int) "cardinal" 2 (Runtime.Profile.cardinal p');
  Alcotest.(check int) "hits preserved" 2 (Runtime.Profile.hit_count p' (site 9))

let test_profile_save_load () =
  let p = Runtime.Profile.create () in
  Runtime.Profile.record p (site 5);
  let path = Filename.temp_file "pkru" ".profile.json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Runtime.Profile.save p path;
      let p' = Runtime.Profile.load path in
      Alcotest.(check bool) "site survives" true (Runtime.Profile.mem p' (site 5)))

let test_profile_merge_and_subset () =
  let a = Runtime.Profile.create () in
  let b = Runtime.Profile.create () in
  Runtime.Profile.record a (site 1);
  Runtime.Profile.record b (site 1);
  Runtime.Profile.record b (site 2);
  let m = Runtime.Profile.merge a b in
  Alcotest.(check int) "merged" 2 (Runtime.Profile.cardinal m);
  Alcotest.(check int) "hits summed" 2 (Runtime.Profile.hit_count m (site 1));
  let rng = Util.Rng.create 3 in
  Alcotest.(check int) "subset 0" 0
    (Runtime.Profile.cardinal (Runtime.Profile.subset m ~fraction:0.0 ~rng));
  Alcotest.(check int) "subset 1" 2
    (Runtime.Profile.cardinal (Runtime.Profile.subset m ~fraction:1.0 ~rng))

(* --- Comp_stack --- *)

let test_comp_stack () =
  let s = Runtime.Comp_stack.create () in
  Runtime.Comp_stack.push s Mpk.Pkru.all_enabled;
  Runtime.Comp_stack.push s (Mpk.Pkru.all_disabled_except []);
  Alcotest.(check int) "depth" 2 (Runtime.Comp_stack.depth s);
  ignore (Runtime.Comp_stack.pop s);
  ignore (Runtime.Comp_stack.pop s);
  Alcotest.(check int) "max depth" 2 (Runtime.Comp_stack.max_depth s);
  Alcotest.(check bool) "underflow" true
    (match Runtime.Comp_stack.pop s with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Compartment views --- *)

let test_compartment_views () =
  let tk = key 1 in
  Alcotest.(check bool) "trusted view reads MT" true (Mpk.Pkru.can_read Runtime.Compartment.trusted_view tk);
  let uv = Runtime.Compartment.untrusted_view ~trusted_pkey:tk in
  Alcotest.(check bool) "untrusted view blocked from MT" false (Mpk.Pkru.can_read uv tk);
  Alcotest.(check bool) "untrusted view reads MU" true (Mpk.Pkru.can_read uv Mpk.Pkey.default);
  Alcotest.(check bool) "classify trusted" true
    (Runtime.Compartment.equal (Runtime.Compartment.of_pkru ~trusted_pkey:tk Runtime.Compartment.trusted_view) Runtime.Compartment.Trusted);
  Alcotest.(check bool) "classify untrusted" true
    (Runtime.Compartment.equal (Runtime.Compartment.of_pkru ~trusted_pkey:tk uv) Runtime.Compartment.Untrusted)

(* --- Gate --- *)

let fresh_gate () =
  let m = Sim.Machine.create () in
  (m, Runtime.Gate.create m)

let test_gate_transitions_and_views () =
  let m, g = fresh_gate () in
  Alcotest.(check bool) "starts trusted" true
    (Runtime.Compartment.equal (Runtime.Gate.current g) Runtime.Compartment.Trusted);
  Runtime.Gate.enter_untrusted g;
  Alcotest.(check bool) "now untrusted" true
    (Runtime.Compartment.equal (Runtime.Gate.current g) Runtime.Compartment.Untrusted);
  Runtime.Gate.exit_untrusted g;
  Alcotest.(check bool) "restored" true
    (Mpk.Pkru.equal m.Sim.Machine.cpu.Sim.Cpu.pkru Mpk.Pkru.all_enabled);
  Alcotest.(check int) "two transitions" 2 (Runtime.Gate.transitions g)

let test_gate_nested_callback () =
  let _, g = fresh_gate () in
  let observed = ref [] in
  let note () = observed := Runtime.Gate.current g :: !observed in
  Runtime.Gate.call_untrusted g (fun () ->
      note ();
      Runtime.Gate.callback_trusted g (fun () ->
          note ();
          (* A nested FFI call from inside the callback. *)
          Runtime.Gate.call_untrusted g note);
      note ());
  Alcotest.(check bool) "final state trusted" true
    (Runtime.Compartment.equal (Runtime.Gate.current g) Runtime.Compartment.Trusted);
  Alcotest.(check (list string)) "compartment sequence"
    [ "untrusted"; "trusted"; "untrusted"; "untrusted" ]
    (List.rev_map Runtime.Compartment.to_string !observed);
  Alcotest.(check int) "max nesting" 3 (Runtime.Comp_stack.max_depth (Runtime.Gate.stack g));
  Alcotest.(check int) "transitions" 6 (Runtime.Gate.transitions g)

let test_gate_restores_on_exception () =
  let _, g = fresh_gate () in
  (try Runtime.Gate.call_untrusted g (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check bool) "restored after raise" true
    (Runtime.Compartment.equal (Runtime.Gate.current g) Runtime.Compartment.Trusted);
  Alcotest.(check int) "stack empty" 0 (Runtime.Comp_stack.depth (Runtime.Gate.stack g))

let test_gate_unbalanced_exit () =
  let _, g = fresh_gate () in
  Alcotest.(check bool) "unbalanced exit rejected" true
    (match Runtime.Gate.exit_untrusted g with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_gate_charges_cycles () =
  let m, g = fresh_gate () in
  let c0 = Sim.Machine.cycles m in
  Runtime.Gate.call_untrusted g (fun () -> ());
  let per_round_trip = Sim.Machine.cycles m - c0 in
  let expected =
    2 * (Sim.Cost.default.Sim.Cost.gate_bookkeeping + Sim.Cost.default.Sim.Cost.wrpkru
       + Sim.Cost.default.Sim.Cost.rdpkru)
  in
  Alcotest.(check int) "gate cost" expected per_round_trip

(* --- Profiler: the Figure-2 loop against real machine memory --- *)

let profiling_setup () =
  let m = Sim.Machine.create () in
  let pk = ok (Allocators.Pkalloc.create m) in
  let profiler = Runtime.Profiler.create m in
  Runtime.Profiler.install profiler;
  let gate = Runtime.Gate.create m in
  (m, pk, profiler, gate)

let test_profiler_records_and_single_steps () =
  let m, pk, profiler, gate = profiling_setup () in
  let addr = Option.get (Allocators.Pkalloc.alloc_trusted pk 64) in
  Runtime.Profiler.log_alloc profiler ~alloc_id:(site 11) ~addr ~size:64;
  Sim.Machine.write_u64 m addr 4242;
  let seen = ref 0 in
  Runtime.Gate.call_untrusted gate (fun () ->
      (* U reads a trusted object: fault, record, single-step, resume. *)
      seen := Sim.Machine.read_u64 m addr);
  Alcotest.(check int) "data read through the fault" 4242 !seen;
  Alcotest.(check bool) "site recorded" true
    (Runtime.Profile.mem (Runtime.Profiler.profile profiler) (site 11));
  Alcotest.(check int) "one fault serviced" 1 (Runtime.Profiler.faults_serviced profiler);
  (* The restricted view was restored after the single step: a second,
     different object faults again rather than inheriting open access. *)
  let addr2 = Option.get (Allocators.Pkalloc.alloc_trusted pk 64) in
  Runtime.Profiler.log_alloc profiler ~alloc_id:(site 12) ~addr:addr2 ~size:64;
  Runtime.Gate.call_untrusted gate (fun () -> ignore (Sim.Machine.read_u64 m addr2));
  Alcotest.(check int) "second fault serviced separately" 2
    (Runtime.Profiler.faults_serviced profiler);
  Alcotest.(check int) "two unique sites" 2
    (Runtime.Profile.cardinal (Runtime.Profiler.profile profiler))

let test_profiler_dedups_repeated_site () =
  let m, pk, profiler, gate = profiling_setup () in
  let addr = Option.get (Allocators.Pkalloc.alloc_trusted pk 256) in
  Runtime.Profiler.log_alloc profiler ~alloc_id:(site 1) ~addr ~size:256;
  Runtime.Gate.call_untrusted gate (fun () ->
      for i = 0 to 30 do
        ignore (Sim.Machine.read_u8 m (addr + i))
      done);
  Alcotest.(check int) "every access faulted" 31 (Runtime.Profiler.faults_serviced profiler);
  Alcotest.(check int) "but one unique site" 1
    (Runtime.Profile.cardinal (Runtime.Profiler.profile profiler));
  Alcotest.(check int) "hit count kept" 31
    (Runtime.Profile.hit_count (Runtime.Profiler.profile profiler) (site 1))

let test_profiler_untracked_fault () =
  let m, _pk, profiler, gate = profiling_setup () in
  (* Trusted, pkey-tagged memory that is not a tracked heap object: the
     secret page.  Profiling must not crash, and must not record a site. *)
  let secret = Vmm.Layout.secret_addr in
  Sim.Machine.priv_write_u64 m secret 42;
  Runtime.Gate.call_untrusted gate (fun () -> ignore (Sim.Machine.read_u64 m secret));
  Alcotest.(check int) "untracked fault" 1 (Runtime.Profiler.untracked_faults profiler);
  Alcotest.(check int) "profile empty" 0
    (Runtime.Profile.cardinal (Runtime.Profiler.profile profiler))

let test_profiler_chains_to_app_handler () =
  let m, _pk, profiler, gate = profiling_setup () in
  ignore profiler;
  (* An application handler registered before the profiler must still see
     non-MPK faults (here: an unmapped address). *)
  let app_handler_hits = ref 0 in
  (* Note: profiling_setup installed the profiler already, so this handler
     is *later* in the chain and would shadow it; register the app handler
     on a fresh machine ordering instead. *)
  let m2 = Sim.Machine.create () in
  let pk2 = ok (Allocators.Pkalloc.create m2) in
  ignore pk2;
  Sim.Signals.register_segv m2.Sim.Machine.signals (fun f ->
      match f.Vmm.Fault.kind with
      | Vmm.Fault.Not_mapped ->
        incr app_handler_hits;
        Sim.Signals.Kill "app handler: mapped nothing"
      | _ -> Sim.Signals.Pass);
  let profiler2 = Runtime.Profiler.create m2 in
  Runtime.Profiler.install profiler2;
  (match Sim.Machine.read_u8 m2 0x555000 with
  | exception Sim.Signals.Process_killed _ -> ()
  | _ -> Alcotest.fail "expected app handler to fire");
  Alcotest.(check int) "app handler saw the fault" 1 !app_handler_hits;
  ignore (m, gate)

(* A fault resolved by a handler registered after the profiler (so: ahead
   of it in the chain) must never reach the profiler at all — its
   untracked-fault counter stays at zero. *)
let test_profiler_not_charged_for_shadowed_fault () =
  let m, _pk, profiler, gate = profiling_setup () in
  let secret = Vmm.Layout.secret_addr in
  Sim.Machine.priv_write_u64 m secret 42;
  Sim.Signals.register_segv m.Sim.Machine.signals (fun f ->
      match f.Vmm.Fault.kind with
      | Vmm.Fault.Pkey_violation _ ->
        (* Resolve by opening the compartment for the retried access. *)
        Sim.Cpu.set_pkru m.Sim.Machine.cpu Mpk.Pkru.all_enabled;
        Sim.Signals.Retry
      | _ -> Sim.Signals.Pass);
  Runtime.Gate.call_untrusted gate (fun () -> ignore (Sim.Machine.read_u64 m secret));
  Alcotest.(check int) "profiler never saw the fault" 0
    (Runtime.Profiler.untracked_faults profiler);
  Alcotest.(check int) "nothing recorded" 0
    (Runtime.Profile.cardinal (Runtime.Profiler.profile profiler))

(* --- Mitigator: enforcement-mode fault recovery --- *)

let mitigator_setup ?budget ?refill_cycles policy =
  let m = Sim.Machine.create () in
  let pk = ok (Allocators.Pkalloc.create m) in
  let mit = Runtime.Mitigator.create ?budget ?refill_cycles ~policy ~pkalloc:pk m in
  Runtime.Mitigator.install mit;
  let gate = Runtime.Gate.create m in
  (m, pk, mit, gate)

(* An MT object whose site is "unprofiled": in enforcement mode a U access
   faults, and the mitigator adjudicates. *)
let tracked_mt_object ?(id = 77) ?(size = 64) pk mit =
  let addr = Option.get (Allocators.Pkalloc.alloc_trusted pk size) in
  Runtime.Mitigator.log_alloc mit ~alloc_id:(site id) ~addr ~size;
  addr

let test_mitigator_emulate_spends_budget () =
  let m, pk, mit, gate = mitigator_setup ~budget:2 Runtime.Mitigator.Emulate in
  let addr = tracked_mt_object pk mit in
  Sim.Machine.write_u64 m addr 4242;
  (* Two incidents fit the budget and are emulated transparently. *)
  Runtime.Gate.call_untrusted gate (fun () ->
      Alcotest.(check int) "first emulated" 4242 (Sim.Machine.read_u64 m addr);
      Alcotest.(check int) "second emulated" 4242 (Sim.Machine.read_u64 m addr));
  Alcotest.(check int) "tokens spent" 0 (Runtime.Mitigator.tokens_left mit);
  (* The third incident escalates to Abort behaviour: unresolved fault. *)
  (match Runtime.Gate.call_untrusted gate (fun () -> ignore (Sim.Machine.read_u64 m addr)) with
  | exception Vmm.Fault.Unhandled { Vmm.Fault.kind = Vmm.Fault.Pkey_violation _; _ } -> ()
  | _ -> Alcotest.fail "expected escalation once the budget is spent");
  Alcotest.(check (list (pair string int))) "outcome counts"
    [ ("emulated", 2); ("escalated", 1) ]
    (Runtime.Mitigator.outcome_counts mit);
  Alcotest.(check int) "three incidents" 3 (Runtime.Mitigator.incidents mit);
  Alcotest.(check int) "gate balanced after escalation" 0
    (Runtime.Comp_stack.depth (Runtime.Gate.stack gate))

let test_mitigator_token_refill () =
  let m, pk, mit, gate =
    mitigator_setup ~budget:1 ~refill_cycles:10_000 Runtime.Mitigator.Emulate
  in
  let addr = tracked_mt_object pk mit in
  Sim.Machine.write_u64 m addr 7;
  Runtime.Gate.call_untrusted gate (fun () -> ignore (Sim.Machine.read_u64 m addr));
  Alcotest.(check int) "bucket empty" 0 (Runtime.Mitigator.tokens_left mit);
  Sim.Cpu.charge m.Sim.Machine.cpu 10_000;
  Alcotest.(check int) "one token earned back" 1 (Runtime.Mitigator.tokens_left mit);
  Runtime.Gate.call_untrusted gate (fun () ->
      Alcotest.(check int) "refilled token services the next incident" 7
        (Sim.Machine.read_u64 m addr))

let test_mitigator_promote_quarantines_site () =
  let m, pk, mit, gate = mitigator_setup Runtime.Mitigator.Promote in
  let addr = tracked_mt_object ~id:91 pk mit in
  Sim.Machine.write_u64 m addr 13;
  Runtime.Gate.call_untrusted gate (fun () ->
      Alcotest.(check int) "access emulated" 13 (Sim.Machine.read_u64 m addr));
  let printed = Runtime.Alloc_id.to_string (site 91) in
  Alcotest.(check (list string)) "site quarantined" [ printed ]
    (Runtime.Mitigator.promoted_sites mit);
  Alcotest.(check bool) "pkalloc override table sees it" true
    (Allocators.Pkalloc.site_quarantined pk printed);
  Alcotest.(check (list (pair string int))) "outcome" [ ("promoted", 1) ]
    (Runtime.Mitigator.outcome_counts mit)

let test_mitigator_degrade_fails_gracefully () =
  let m, pk, mit, gate = mitigator_setup Runtime.Mitigator.Degrade in
  let addr = tracked_mt_object pk mit in
  Sim.Machine.write_u64 m addr 1;
  (match Runtime.Gate.call_untrusted gate (fun () -> ignore (Sim.Machine.read_u64 m addr)) with
  | exception Runtime.Mitigator.Degraded _ -> ()
  | _ -> Alcotest.fail "expected Degraded");
  Alcotest.(check bool) "degraded flag" true (Runtime.Mitigator.is_degraded mit);
  Alcotest.(check int) "gate restored by the unwind" 0
    (Runtime.Comp_stack.depth (Runtime.Gate.stack gate));
  Alcotest.(check bool) "back in trusted view" true
    (Runtime.Compartment.equal (Runtime.Gate.current gate) Runtime.Compartment.Trusted);
  Alcotest.(check (list (pair string int))) "outcome" [ ("degraded", 1) ]
    (Runtime.Mitigator.outcome_counts mit)

let test_mitigator_refuses_untracked_address () =
  (* The secret page resolves in no metadata table: leniency must not
     extend to it — the fault stays unresolved whatever the policy. *)
  let m, _pk, mit, gate = mitigator_setup Runtime.Mitigator.Emulate in
  let secret = Vmm.Layout.secret_addr in
  Sim.Machine.priv_write_u64 m secret 42;
  (match Runtime.Gate.call_untrusted gate (fun () -> ignore (Sim.Machine.read_u64 m secret)) with
  | exception Vmm.Fault.Unhandled { Vmm.Fault.kind = Vmm.Fault.Pkey_violation _; _ } -> ()
  | _ -> Alcotest.fail "expected the untracked fault to stay unresolved");
  Alcotest.(check (list (pair string int))) "refused, not emulated" [ ("refused", 1) ]
    (Runtime.Mitigator.outcome_counts mit);
  Alcotest.(check int) "budget untouched" 65536 (Runtime.Mitigator.tokens_left mit)

let test_mitigator_abort_does_nothing () =
  let m, pk, mit, gate = mitigator_setup Runtime.Mitigator.Abort in
  let addr = tracked_mt_object pk mit in
  Sim.Machine.write_u64 m addr 9;
  (match Runtime.Gate.call_untrusted gate (fun () -> ignore (Sim.Machine.read_u64 m addr)) with
  | exception Vmm.Fault.Unhandled { Vmm.Fault.kind = Vmm.Fault.Pkey_violation _; _ } -> ()
  | _ -> Alcotest.fail "expected the fault to propagate under Abort");
  Alcotest.(check int) "no incidents accounted" 0 (Runtime.Mitigator.incidents mit);
  Alcotest.(check (list (pair string int))) "no outcomes" []
    (Runtime.Mitigator.outcome_counts mit)

let test_mitigator_counts_into_telemetry () =
  let m, pk, mit, gate = mitigator_setup Runtime.Mitigator.Emulate in
  let addr = tracked_mt_object pk mit in
  Sim.Machine.write_u64 m addr 3;
  let sink = Telemetry.Sink.create () in
  Telemetry.Sink.with_sink sink (fun () ->
      Runtime.Gate.call_untrusted gate (fun () -> ignore (Sim.Machine.read_u64 m addr)));
  Alcotest.(check int) "sink counter mirrors the incident" 1
    (Telemetry.Sink.count sink "mitigation.emulate.emulated")

let suite =
  [
    Alcotest.test_case "alloc_id order + json" `Quick test_alloc_id_order_and_json;
    Alcotest.test_case "metadata interior lookup" `Quick test_metadata_interior_lookup;
    Alcotest.test_case "metadata realloc keeps id" `Quick test_metadata_realloc_keeps_id;
    QCheck_alcotest.to_alcotest prop_metadata_matches_model;
    Alcotest.test_case "profile unique sites" `Quick test_profile_record_unique;
    Alcotest.test_case "profile json round-trip" `Quick test_profile_json_roundtrip;
    Alcotest.test_case "profile save/load" `Quick test_profile_save_load;
    Alcotest.test_case "profile merge + subset" `Quick test_profile_merge_and_subset;
    Alcotest.test_case "comp stack" `Quick test_comp_stack;
    Alcotest.test_case "compartment views" `Quick test_compartment_views;
    Alcotest.test_case "gate transitions + views" `Quick test_gate_transitions_and_views;
    Alcotest.test_case "gate nested callback" `Quick test_gate_nested_callback;
    Alcotest.test_case "gate restores on exception" `Quick test_gate_restores_on_exception;
    Alcotest.test_case "gate unbalanced exit" `Quick test_gate_unbalanced_exit;
    Alcotest.test_case "gate cycle cost" `Quick test_gate_charges_cycles;
    Alcotest.test_case "profiler records + single-steps" `Quick test_profiler_records_and_single_steps;
    Alcotest.test_case "profiler dedups sites" `Quick test_profiler_dedups_repeated_site;
    Alcotest.test_case "profiler untracked fault" `Quick test_profiler_untracked_fault;
    Alcotest.test_case "profiler chains to app handler" `Quick test_profiler_chains_to_app_handler;
    Alcotest.test_case "profiler not charged for shadowed fault" `Quick
      test_profiler_not_charged_for_shadowed_fault;
    Alcotest.test_case "mitigator emulate + budget" `Quick test_mitigator_emulate_spends_budget;
    Alcotest.test_case "mitigator token refill" `Quick test_mitigator_token_refill;
    Alcotest.test_case "mitigator promote quarantines" `Quick
      test_mitigator_promote_quarantines_site;
    Alcotest.test_case "mitigator degrade graceful" `Quick test_mitigator_degrade_fails_gracefully;
    Alcotest.test_case "mitigator refuses untracked" `Quick
      test_mitigator_refuses_untracked_address;
    Alcotest.test_case "mitigator abort inert" `Quick test_mitigator_abort_does_nothing;
    Alcotest.test_case "mitigator telemetry counters" `Quick test_mitigator_counts_into_telemetry;
  ]
