let () =
  Alcotest.run "pkru-safe-repro"
    [
      ("util", Test_util.suite);
      ("telemetry", Test_telemetry.suite);
      ("attribution", Test_attribution.suite);
      ("mpk", Test_mpk.suite);
      ("vmm", Test_vmm.suite);
      ("sim", Test_sim.suite);
      ("tlb", Test_tlb.suite);
      ("allocators", Test_allocators.suite);
      ("runtime", Test_runtime.suite);
      ("corpus", Test_corpus.suite);
      ("core", Test_core.suite);
      ("threads", Test_threads.suite);
      ("ir", Test_ir.suite);
      ("ir-text", Test_ir_text.suite);
      ("toolchain", Test_toolchain.suite);
      ("static-taint", Test_static_taint.suite);
      ("pipeline-fuzz", Test_pipeline_fuzz.suite);
      ("stack-extension", Test_stack_extension.suite);
      ("engine", Test_engine.suite);
      ("bytecode", Test_bytecode.suite);
      ("dispatch", Test_dispatch.suite);
      ("browser", Test_browser.suite);
      ("layout", Test_layout.suite);
      ("selector", Test_selector.suite);
      ("exploit", Test_exploit.suite);
      ("workloads", Test_workloads.suite);
      ("sentinel", Test_sentinel.suite);
      ("chaos", Test_chaos.suite);
      ("census", Test_census.suite);
      ("audit", Test_audit.suite);
      ("fleet", Test_fleet.suite);
      ("fuzz-substrates", Test_fuzz_substrates.suite);
      ("edge-cases", Test_edge_cases.suite);
      ("garmr", Test_garmr.suite);
    ]
