(* Tests for the telemetry analysis tier: site-heat / flow-matrix
   attribution over synthetic traces, the metrics registry and its
   Prometheus exposition, the cycle-sampling profiler, the workload name
   registry, and the end-to-end consistency of sampled stacks against the
   flow matrix's cycle accounting. *)

let emit sink ~ts event = Telemetry.Sink.emit sink ~ts ~cpu:0 event

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* --- Attribution: site heat over a synthetic trace --- *)

let test_site_heat_synthetic () =
  let sink = Telemetry.Sink.create () in
  let alloc ~ts ?site ~addr ~size compartment =
    emit sink ~ts (Telemetry.Event.Alloc { compartment; site; addr; size })
  in
  alloc ~ts:10 ~site:"alpha" ~addr:0x100 ~size:64 Telemetry.Event.Trusted;
  alloc ~ts:20 ~site:"alpha" ~addr:0x200 ~size:32 Telemetry.Event.Trusted;
  alloc ~ts:30 ~site:"beta" ~addr:0x300 ~size:128 Telemetry.Event.Untrusted;
  alloc ~ts:40 ~addr:0x400 ~size:8 Telemetry.Event.Untrusted;
  emit sink ~ts:50 (Telemetry.Event.Free { compartment = Telemetry.Event.Trusted; addr = 0x200 });
  (* A fault at an interior address of beta's live allocation, and one at
     an address nothing owns. *)
  emit sink ~ts:60 (Telemetry.Event.Mpk_fault { addr = 0x300 + 17; pkey = 1 });
  emit sink ~ts:70 (Telemetry.Event.Mpk_fault { addr = 0x9999; pkey = 1 });
  (* A free of an address whose alloc the trace never saw. *)
  emit sink ~ts:80 (Telemetry.Event.Free { compartment = Telemetry.Event.Trusted; addr = 0x777 });
  let a = Telemetry.Attribution.of_sink sink in
  let site key =
    match Telemetry.Attribution.site_stats a key with
    | Some s -> s
    | None -> Alcotest.fail ("missing site " ^ key)
  in
  let alpha = site "alpha" in
  Alcotest.(check int) "alpha allocs" 2 alpha.Telemetry.Attribution.allocs;
  Alcotest.(check int) "alpha frees" 1 alpha.Telemetry.Attribution.frees;
  Alcotest.(check int) "alpha bytes" 96 alpha.Telemetry.Attribution.bytes_allocated;
  Alcotest.(check int) "alpha live" 64 alpha.Telemetry.Attribution.live_bytes;
  Alcotest.(check int) "alpha peak" 96 alpha.Telemetry.Attribution.peak_live_bytes;
  Alcotest.(check string) "alpha pool" "MT"
    (Telemetry.Attribution.pool_of_site alpha);
  let beta = site "beta" in
  Alcotest.(check string) "beta pool" "MU" (Telemetry.Attribution.pool_of_site beta);
  Alcotest.(check int) "fault lands on beta" 1 beta.Telemetry.Attribution.mpk_faults;
  Alcotest.(check int) "alpha takes no fault" 0 alpha.Telemetry.Attribution.mpk_faults;
  let unattr = site Telemetry.Attribution.unattributed in
  Alcotest.(check int) "unattributed alloc counted" 1 unattr.Telemetry.Attribution.allocs;
  Alcotest.(check int) "unmatched free counted" 1 (Telemetry.Attribution.unmatched_frees a);
  let flow = Telemetry.Attribution.flow a in
  Alcotest.(check int) "allocs to MT" 2 flow.Telemetry.Attribution.allocs_mt;
  Alcotest.(check int) "allocs to MU" 2 flow.Telemetry.Attribution.allocs_mu;
  Alcotest.(check int) "both faults in matrix" 2 flow.Telemetry.Attribution.mpk_faults;
  (* Sites sort descending by bytes allocated. *)
  Alcotest.(check (list string)) "heat order" [ "beta"; "alpha"; "(unattributed)" ]
    (List.map
       (fun (s : Telemetry.Attribution.site) -> s.Telemetry.Attribution.site)
       (Telemetry.Attribution.sites a))

(* --- Attribution: flow matrix cycle accounting --- *)

let test_flow_matrix_cycles () =
  let sink = Telemetry.Sink.create () in
  (* T [0,100) -> U [100,300) -> nested callback into T [300,350)
     -> back to U [350,400) -> back to T [400,500). *)
  emit sink ~ts:100 (Telemetry.Event.Gate_enter { target = Telemetry.Event.Untrusted });
  emit sink ~ts:300 (Telemetry.Event.Gate_enter { target = Telemetry.Event.Trusted });
  emit sink ~ts:350 (Telemetry.Event.Gate_exit { target = Telemetry.Event.Trusted });
  emit sink ~ts:400 (Telemetry.Event.Gate_exit { target = Telemetry.Event.Untrusted });
  let a = Telemetry.Attribution.of_sink ~total_cycles:500 sink in
  let flow = Telemetry.Attribution.flow a in
  Alcotest.(check int) "T->U" 1 flow.Telemetry.Attribution.t_to_u;
  Alcotest.(check int) "U->T" 1 flow.Telemetry.Attribution.u_to_t;
  Alcotest.(check int) "crossings" 4 flow.Telemetry.Attribution.crossings;
  Alcotest.(check int) "max nesting" 2 flow.Telemetry.Attribution.max_nesting;
  Alcotest.(check int) "cycles in T" (100 + 50 + 100) flow.Telemetry.Attribution.cycles_trusted;
  Alcotest.(check int) "cycles in U" (200 + 50) flow.Telemetry.Attribution.cycles_untrusted;
  Alcotest.(check int) "cycles partition the run" 500 (Telemetry.Attribution.total_cycles a);
  let t_share, u_share = Telemetry.Attribution.compartment_cycle_share a in
  Alcotest.(check (float 1e-9)) "T share" 0.5 t_share;
  Alcotest.(check (float 1e-9)) "U share" 0.5 u_share

let test_flow_exit_without_enter () =
  (* The matching enter was evicted from the ring: the exit's target still
     identifies the compartment being left. *)
  let sink = Telemetry.Sink.create () in
  emit sink ~ts:80 (Telemetry.Event.Gate_exit { target = Telemetry.Event.Untrusted });
  let a = Telemetry.Attribution.of_sink ~total_cycles:100 sink in
  let flow = Telemetry.Attribution.flow a in
  (* Before the exit the analysis assumed T (the default start), so those
     80 cycles stay in T; afterwards the inferred compartment is T too. *)
  Alcotest.(check int) "tail charged to inferred T" 100
    flow.Telemetry.Attribution.cycles_trusted;
  Alcotest.(check int) "crossings still counted" 1 flow.Telemetry.Attribution.crossings

let test_attribution_json_roundtrip () =
  let sink = Telemetry.Sink.create () in
  emit sink ~ts:5
    (Telemetry.Event.Alloc
       { compartment = Telemetry.Event.Trusted; site = Some "alpha"; addr = 16; size = 48 });
  emit sink ~ts:10 (Telemetry.Event.Gate_enter { target = Telemetry.Event.Untrusted });
  let a = Telemetry.Attribution.of_sink ~total_cycles:20 sink in
  let parsed =
    Util.Json.of_string (Util.Json.to_string (Telemetry.Attribution.to_json ~site_limit:5 a))
  in
  let heat = Util.Json.member "site_heat" parsed in
  Alcotest.(check int) "sites_total" 1 (Util.Json.to_int (Util.Json.member "sites_total" heat));
  let flow = Util.Json.member "flow_matrix" parsed in
  Alcotest.(check int) "t_to_u" 1 (Util.Json.to_int (Util.Json.member "t_to_u" flow));
  Alcotest.(check int) "cycles_trusted" 10
    (Util.Json.to_int (Util.Json.member "cycles_trusted" flow));
  Alcotest.(check int) "cycles_untrusted" 10
    (Util.Json.to_int (Util.Json.member "cycles_untrusted" flow))

(* --- Metrics registry --- *)

let test_metrics_cells () =
  let reg = Telemetry.Metrics.create () in
  let c = Telemetry.Metrics.counter reg ~help:"total things" "things_total" in
  Telemetry.Metrics.incr c;
  Telemetry.Metrics.incr ~by:4 c;
  Alcotest.(check int) "counter accumulates" 5 !c;
  let c' = Telemetry.Metrics.counter reg "things_total" in
  Alcotest.(check bool) "same cell returned" true (c == c');
  let labelled = Telemetry.Metrics.counter reg ~labels:[ ("kind", "alloc") ] "things_total" in
  Alcotest.(check bool) "distinct label set, distinct cell" false (c == labelled);
  let g = Telemetry.Metrics.gauge reg "depth" in
  Telemetry.Metrics.set g 3.5;
  Alcotest.(check (float 1e-9)) "gauge set" 3.5 !g;
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Metrics: \"things_total\" already registered as a counter, not a gauge")
    (fun () -> ignore (Telemetry.Metrics.gauge reg "things_total"));
  Alcotest.(check bool) "invalid name rejected" true
    (match Telemetry.Metrics.counter reg "0bad name" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_metrics_series_windows () =
  let reg = Telemetry.Metrics.create () in
  let s = Telemetry.Metrics.series reg ~window:100 "allocs_per_window" in
  List.iter
    (fun (cycle, v) -> Telemetry.Metrics.observe_series s ~cycle v)
    [ (0, 1.0); (99, 1.0); (100, 1.0); (250, 2.0); (250, 3.0) ];
  Alcotest.(check (list (pair int (float 1e-9)))) "bucketed by window start"
    [ (0, 2.0); (100, 1.0); (200, 5.0) ]
    (Telemetry.Metrics.series_points s);
  Alcotest.(check int) "window" 100 (Telemetry.Metrics.series_window s)

let test_metrics_expose_format () =
  let reg = Telemetry.Metrics.create () in
  let c =
    Telemetry.Metrics.counter reg ~help:"events by kind"
      ~labels:[ ("kind", "gate\"x\"\n") ]
      "pkru_events_total"
  in
  Telemetry.Metrics.incr ~by:7 c;
  let h = Telemetry.Metrics.histogram reg ~help:"sizes" "pkru_sizes" in
  List.iter (Telemetry.Histogram.observe h) [ 1; 2; 1000 ];
  let text = Telemetry.Metrics.expose reg in
  let has needle = contains text needle in
  Alcotest.(check bool) "HELP line" true (has "# HELP pkru_events_total events by kind");
  Alcotest.(check bool) "TYPE line" true (has "# TYPE pkru_events_total counter");
  Alcotest.(check bool) "label value escaped" true
    (has {|pkru_events_total{kind="gate\"x\"\n"} 7|});
  Alcotest.(check bool) "histogram type" true (has "# TYPE pkru_sizes histogram");
  Alcotest.(check bool) "cumulative +Inf bucket" true (has {|pkru_sizes_bucket{le="+Inf"} 3|});
  Alcotest.(check bool) "sum line" true (has "pkru_sizes_sum 1003");
  Alcotest.(check bool) "count line" true (has "pkru_sizes_count 3")

(* --- Sampler mechanics --- *)

let test_sampler_credit_accumulation () =
  let s = Telemetry.Sampler.create ~every:10 in
  Telemetry.Sampler.with_sampler ~provider:(fun () -> [ "trusted"; "untrusted" ]) s (fun () ->
      Telemetry.Sampler.tick s 25;
      (* 2 periods elapsed, 5 credit left *)
      Telemetry.Sampler.tick s 4;
      (* still under the period: no sample *)
      Telemetry.Sampler.tick s 1
      (* credit reaches 10: one more *));
  Alcotest.(check int) "samples proportional to cycles" 3 (Telemetry.Sampler.samples_total s);
  Alcotest.(check (list (pair string int))) "folded stack" [ ("trusted;untrusted", 3) ]
    (Telemetry.Sampler.stacks s);
  Alcotest.(check string) "folded text" "trusted;untrusted 3\n" (Telemetry.Sampler.to_folded s);
  Alcotest.(check (list (pair string (float 1e-9)))) "leaf shares" [ ("untrusted", 1.0) ]
    (Telemetry.Sampler.leaf_shares s)

let test_sampler_restores_on_raise () =
  Alcotest.(check bool) "inactive by default" false (Telemetry.Sampler.active ());
  let s = Telemetry.Sampler.create ~every:4 in
  (try Telemetry.Sampler.with_sampler s (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check bool) "restored after raise" false (Telemetry.Sampler.active ());
  Alcotest.check_raises "period must be positive"
    (Invalid_argument "Sampler.create: every must be positive") (fun () ->
      ignore (Telemetry.Sampler.create ~every:0))

(* --- The workload name registry --- *)

let test_registry_lookup_errors () =
  (match Workloads.Registry.suite_of_name "kraken" with
  | Ok s -> Alcotest.(check string) "suite found" "Kraken" s.Workloads.Bench_def.suite_name
  | Error msg -> Alcotest.fail msg);
  (match Workloads.Registry.suite_of_name "chromium" with
  | Ok _ -> Alcotest.fail "bogus suite accepted"
  | Error msg ->
    List.iter
      (fun name ->
        Alcotest.(check bool) ("suite error lists " ^ name) true (contains msg name))
      Workloads.Registry.suite_names);
  match Workloads.Registry.bench_of_name "no-such-bench" with
  | Ok _ -> Alcotest.fail "bogus bench accepted"
  | Error msg ->
    Alcotest.(check bool) "bench error lists a valid name" true (contains msg "dom-attr");
    Alcotest.(check bool) "registry enumerates benches" true
      (List.length Workloads.Registry.bench_names > 50)

(* --- End to end: sampled profile vs the flow matrix --- *)

let sampled_bench =
  Workloads.Bench_def.bench ~page:(Workloads.Dom_scripts.page ~rows:4) "attribution-bench"
    (Workloads.Dom_scripts.dom_attr ~iters:8)

let test_sampled_profile_matches_flow_matrix () =
  let profile =
    Workloads.Runner.profile_suite
      { Workloads.Bench_def.suite_name = "attribution"; benches = [ sampled_bench ] }
  in
  let m =
    Workloads.Runner.run_config ~telemetry:true ~sample_every:64 ~mode:Pkru_safe.Config.Mpk
      ~profile sampled_bench
  in
  let sink = Option.get m.Workloads.Runner.trace in
  let sampler = Option.get m.Workloads.Runner.samples in
  (* The consistency check below assumes the full trace was retained. *)
  Alcotest.(check int) "no events dropped" 0 (Telemetry.Sink.dropped sink);
  let a = Telemetry.Attribution.of_sink ~total_cycles:m.Workloads.Runner.cycles sink in
  let flow = Telemetry.Attribution.flow a in
  Alcotest.(check int) "attributed cycles partition the run" m.Workloads.Runner.cycles
    (flow.Telemetry.Attribution.cycles_trusted + flow.Telemetry.Attribution.cycles_untrusted);
  (* The folded export is non-empty and its line count matches the number
     of distinct stacks. *)
  let folded = Telemetry.Sampler.to_folded sampler in
  Alcotest.(check bool) "samples taken" true (Telemetry.Sampler.samples_total sampler > 100);
  Alcotest.(check bool) "folded non-empty" true (String.length folded > 0);
  Alcotest.(check int) "one folded line per stack"
    (List.length (Telemetry.Sampler.stacks sampler))
    (List.length (String.split_on_char '\n' (String.trim folded)));
  (* Per-compartment sample shares must agree with the flow matrix's
     per-compartment cycle totals: both charge a gate transition's cost to
     the compartment that was running when it began. *)
  let _, u_cycle_share = Telemetry.Attribution.compartment_cycle_share a in
  let u_sample_share =
    match List.assoc_opt "untrusted" (Telemetry.Sampler.leaf_shares sampler) with
    | Some share -> share
    | None -> 0.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "sampled U share %.3f within 0.05 of cycle U share %.3f" u_sample_share
       u_cycle_share)
    true
    (Float.abs (u_sample_share -. u_cycle_share) < 0.05)

(* The Prometheus exposition of a real run carries the attribution and
   profile families end to end. *)
let test_prometheus_end_to_end () =
  let profile =
    Workloads.Runner.profile_suite
      { Workloads.Bench_def.suite_name = "attribution"; benches = [ sampled_bench ] }
  in
  let m =
    Workloads.Runner.run_config ~telemetry:true ~sample_every:64 ~mode:Pkru_safe.Config.Mpk
      ~profile sampled_bench
  in
  let sink = Option.get m.Workloads.Runner.trace in
  let sampler = Option.get m.Workloads.Runner.samples in
  let attribution = Telemetry.Attribution.of_sink ~total_cycles:m.Workloads.Runner.cycles sink in
  let text = Telemetry.Export.prometheus ~attribution ~sampler sink in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("exposition contains " ^ needle) true (contains text needle))
    [
      "# TYPE pkru_telemetry_events_total counter";
      {|pkru_events_total{kind="gate_enter"}|};
      {|pkru_flow_crossings_total{direction="t_to_u"}|};
      {|pkru_compartment_cycles_total{compartment="untrusted"}|};
      {|pkru_profile_samples_total{stack=|};
      "# TYPE pkru_allocs_per_window gauge";
    ]

let suite =
  [
    Alcotest.test_case "site heat (synthetic trace)" `Quick test_site_heat_synthetic;
    Alcotest.test_case "flow matrix cycle accounting" `Quick test_flow_matrix_cycles;
    Alcotest.test_case "flow exit without enter" `Quick test_flow_exit_without_enter;
    Alcotest.test_case "attribution json round-trips" `Quick test_attribution_json_roundtrip;
    Alcotest.test_case "metrics cells" `Quick test_metrics_cells;
    Alcotest.test_case "metrics series windows" `Quick test_metrics_series_windows;
    Alcotest.test_case "metrics exposition format" `Quick test_metrics_expose_format;
    Alcotest.test_case "sampler credit accumulation" `Quick test_sampler_credit_accumulation;
    Alcotest.test_case "sampler restores on raise" `Quick test_sampler_restores_on_raise;
    Alcotest.test_case "registry lookup errors" `Quick test_registry_lookup_errors;
    Alcotest.test_case "sampled profile matches flow matrix" `Quick
      test_sampled_profile_matches_flow_matrix;
    Alcotest.test_case "prometheus end to end" `Quick test_prometheus_end_to_end;
  ]
