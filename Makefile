# Convenience targets for the PKRU-Safe reproduction.

.PHONY: all build test check bench examples clean

all: build

build:
	dune build @all

test:
	dune runtest --force

# Everything CI runs: full build (all targets) + the complete test suite.
check:
	dune build @all
	dune runtest --force

bench:
	dune exec bench/main.exe

bench-json:
	dune exec bench/main.exe -- --json bench-results

examples:
	dune exec examples/quickstart.exe
	dune exec examples/servo_like.exe
	dune exec examples/exploit_demo.exe
	dune exec examples/callback_ffi.exe
	dune exec examples/static_analysis.exe
	dune exec examples/stack_protection.exe

clean:
	dune clean
